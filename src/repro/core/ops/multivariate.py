"""Multivariate operations and distance measures (the paper's future work).

Section VII lists "multivariate operations, distance measures, similarity
measures" as planned extensions of SZOps.  This module implements them on
the same partial-decompression machinery as the core operations:

* :func:`add` / :func:`subtract` — elementwise combination of two
  compressed arrays sharing geometry and error bound.  Works in the
  quantized integer domain (``q_c = q_a +- q_b``) and re-encodes; pairs of
  constant blocks are combined in O(1) without touching any payload.
* :func:`dot` / :func:`l2_distance` / :func:`cosine_similarity` —
  computation-as-output measures over two compressed arrays, accumulated
  in the quantized domain with constant x constant block pairs in closed
  form.

Error semantics: with both inputs decoding to ``2*eps*q``, the combined
stream decodes to exactly ``x_hat + y_hat`` (or the difference) — no new
quantization error is introduced, so the result is within ``eps_a + eps_b``
of the sum of the originals.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bitstream import exclusive_cumsum
from repro.core.encode import block_widths, encode_block_sections
from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.ops._partial import (
    StoredBlocks,
    ensure_quantized_range,
    stored_quantized,
)

__all__ = ["add", "subtract", "dot", "l2_distance", "cosine_similarity"]

#: How each exported operation propagates the stream's error bound
#: (vocabulary in docs/ANALYSIS.md, checked by lint rule SZL005).
ERROR_PROPAGATION = {
    "add": "bounded-additive",
    "subtract": "bounded-additive",
    "dot": "computation",
    "l2_distance": "computation",
    "cosine_similarity": "computation",
}


def _require_compatible(a: SZOpsCompressed, b: SZOpsCompressed) -> None:
    if a.shape != b.shape:
        raise OperationError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.block_size != b.block_size:
        raise OperationError(
            f"block size mismatch: {a.block_size} vs {b.block_size}"
        )
    if not math.isclose(a.eps, b.eps, rel_tol=1e-12):
        raise OperationError(
            f"error-bound mismatch: {a.eps} vs {b.eps}; re-quantize one "
            "operand first"
        )


def _full_quantized(blocks: StoredBlocks, lens: np.ndarray) -> np.ndarray:
    """Expand a StoredBlocks view to the full quantized array."""
    n = int(lens.sum())
    q = np.empty(n, dtype=np.int64)
    stored_elems = np.repeat(blocks.stored_mask, lens)
    if blocks.q.size:
        q[stored_elems] = blocks.q
    if blocks.const_outliers.size:
        q[~stored_elems] = np.repeat(blocks.const_outliers, blocks.const_lens)
    return q


def _combine(a: SZOpsCompressed, b: SZOpsCompressed, sign: int) -> SZOpsCompressed:
    _require_compatible(a, b)
    layout = a.layout
    lens = layout.lengths()
    blocks_a = stored_quantized(a)
    blocks_b = stored_quantized(b)

    both_const = ~blocks_a.stored_mask & ~blocks_b.stored_mask
    any_stored = ~both_const

    new_outliers = np.empty(layout.n_blocks, dtype=np.int64)
    new_widths = np.zeros(layout.n_blocks, dtype=np.uint8)

    # Constant x constant pairs: combine outliers, never touch payload.
    const_a = np.zeros(layout.n_blocks, dtype=np.int64)
    const_b = np.zeros(layout.n_blocks, dtype=np.int64)
    const_a[~blocks_a.stored_mask] = blocks_a.const_outliers
    const_b[~blocks_b.stored_mask] = blocks_b.const_outliers
    new_outliers[both_const] = ensure_quantized_range(
        const_a[both_const] + sign * const_b[both_const],
        "compressed-domain combine (constant blocks)",
    )

    if any_stored.any():
        qa = _full_quantized(blocks_a, lens)
        qb = _full_quantized(blocks_b, lens)
        # Combined bins must re-enter the |q| < Q_LIMIT band: without the
        # gate, adjacent near-limit bins make the Lorenzo deltas below
        # (differences of two combined bins) wrap int64 and the re-encoded
        # stream silently decodes to garbage.
        qc = ensure_quantized_range(
            qa + sign * qb, "compressed-domain combine"
        )
        sel_elems = np.repeat(any_stored, lens)
        q_sel = qc[sel_elems]
        sel_lens = lens[any_stored]
        starts = exclusive_cumsum(sel_lens)
        deltas = np.empty_like(q_sel)
        if q_sel.size:
            deltas[0] = 0
            np.subtract(q_sel[1:], q_sel[:-1], out=deltas[1:])
            deltas[starts] = 0
            new_outliers[any_stored] = q_sel[starts]
        signs = (deltas < 0).view(np.uint8)
        mags = np.abs(deltas).astype(np.uint64)
        sel_widths = block_widths(mags, sel_lens)
        new_widths[any_stored] = sel_widths
        sign_bytes, payload_bytes = encode_block_sections(
            mags, signs, sel_widths, sel_lens
        )
    else:
        sign_bytes = np.zeros(0, dtype=np.uint8)
        payload_bytes = np.zeros(0, dtype=np.uint8)

    return SZOpsCompressed(
        shape=a.shape,
        dtype=a.dtype,
        eps=a.eps,
        block_size=a.block_size,
        widths=new_widths,
        outliers=new_outliers,
        sign_bytes=sign_bytes,
        payload_bytes=payload_bytes,
    )


def add(a: SZOpsCompressed, b: SZOpsCompressed) -> SZOpsCompressed:
    """Elementwise ``a + b`` of two compressed arrays (future-work op).

    Note the result decodes to ``2*eps*(q_a + q_b)`` which is exactly
    ``x_hat + y_hat`` — the MPI-reduction use case of Section I needs
    precisely this kernel to aggregate without decompressing.
    """
    return _combine(a, b, +1)


def subtract(a: SZOpsCompressed, b: SZOpsCompressed) -> SZOpsCompressed:
    """Elementwise ``a - b`` of two compressed arrays (future-work op)."""
    return _combine(a, b, -1)


def _pair_moments(a: SZOpsCompressed, b: SZOpsCompressed):
    """(sum qa*qb, sum qa^2, sum qb^2) with const x const pairs closed-form."""
    _require_compatible(a, b)
    lens = a.layout.lengths()
    blocks_a = stored_quantized(a)
    blocks_b = stored_quantized(b)
    both_const = ~blocks_a.stored_mask & ~blocks_b.stored_mask

    s_ab = s_aa = s_bb = 0.0
    if both_const.any():
        const_a = np.zeros(a.n_blocks, dtype=np.float64)
        const_b = np.zeros(a.n_blocks, dtype=np.float64)
        const_a[~blocks_a.stored_mask] = blocks_a.const_outliers
        const_b[~blocks_b.stored_mask] = blocks_b.const_outliers
        w = lens[both_const].astype(np.float64)
        ca = const_a[both_const]
        cb = const_b[both_const]
        s_ab += float((w * ca * cb).sum())
        s_aa += float((w * ca * ca).sum())
        s_bb += float((w * cb * cb).sum())

    any_stored = ~both_const
    if any_stored.any():
        sel_elems = np.repeat(any_stored, lens)
        qa = _full_quantized(blocks_a, lens)[sel_elems].astype(np.float64)
        qb = _full_quantized(blocks_b, lens)[sel_elems].astype(np.float64)
        s_ab += float(np.dot(qa, qb))
        s_aa += float(np.dot(qa, qa))
        s_bb += float(np.dot(qb, qb))
    return s_ab, s_aa, s_bb


def dot(a: SZOpsCompressed, b: SZOpsCompressed) -> float:
    """Inner product of the represented arrays (future-work measure)."""
    s_ab, _, _ = _pair_moments(a, b)
    return (2.0 * a.eps) * (2.0 * b.eps) * s_ab


def l2_distance(a: SZOpsCompressed, b: SZOpsCompressed) -> float:
    """Euclidean distance between the represented arrays."""
    s_ab, s_aa, s_bb = _pair_moments(a, b)
    # With eps_a == eps_b (checked), ||x-y||^2 = (2eps)^2 (s_aa - 2 s_ab + s_bb).
    sq = max((2.0 * a.eps) ** 2 * (s_aa - 2.0 * s_ab + s_bb), 0.0)
    return math.sqrt(sq)


def cosine_similarity(a: SZOpsCompressed, b: SZOpsCompressed) -> float:
    """Cosine similarity of the represented arrays."""
    s_ab, s_aa, s_bb = _pair_moments(a, b)
    denom = math.sqrt(s_aa) * math.sqrt(s_bb)
    # NaN is impossible by construction: s_aa/s_bb are sums of squares of
    # finite int64 bins accumulated in float64, so both are finite and >= 0.
    if denom == 0.0:  # szops: ignore[SZL003]
        raise OperationError("cosine similarity undefined for a zero array")
    return s_ab / denom
