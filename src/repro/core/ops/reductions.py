"""Univariate reductions: mean, variance, standard deviation (Section V-B).

All three run in the *quantized integer domain*: the payload is decoded to
quantized values (BF^-1, Lorenzo^-1) for non-constant blocks only, block
partial sums are accumulated, and the final scalar is scaled by ``2*eps``
(or its square) once at the end.  Constant blocks contribute closed-form
terms computed from the outlier plane — ``O * len`` to the sum and
``len * (O - mu)^2`` to the squared deviations — so datasets with many
constant blocks reduce faster, which is the effect Table VI / Figure 6
document.

Because the reductions operate on exactly the quantized values the stream
stores, their results equal the same statistics computed on the *fully
decompressed* array (up to float64 accumulation order), and are therefore
within the usual error-propagation distance of the raw data's statistics:
``|mean_c - mean_raw| <= eps`` and ``|std_c - std_raw| <= 2*eps`` style
bounds follow directly from the pointwise bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.format import SZOpsCompressed
from repro.core.ops._partial import StoredBlocks, stored_quantized

__all__ = [
    "mean",
    "variance",
    "std",
    "block_means",
    "summary_statistics",
    "minimum",
    "maximum",
    "value_range",
]

#: How each exported reduction propagates the stream's error bound
#: (vocabulary in docs/ANALYSIS.md, checked by lint rule SZL005).
ERROR_PROPAGATION = {
    "mean": "computation",
    "variance": "computation",
    "std": "computation",
    "block_means": "computation",
    "summary_statistics": "computation",
    "minimum": "computation",
    "maximum": "computation",
    "value_range": "computation",
}


def _quantized_sum(blocks: StoredBlocks) -> float:
    """Sum of all quantized values, constant blocks in closed form."""
    total = 0.0
    if blocks.q.size:
        total += float(blocks.q.sum(dtype=np.float64))
    if blocks.const_outliers.size:
        total += float(
            (blocks.const_outliers.astype(np.float64) * blocks.const_lens).sum()
        )
    return total


def _quantized_sq_dev(blocks: StoredBlocks, mu_q: float) -> float:
    """Sum of squared deviations from ``mu_q`` in the quantized domain."""
    total = 0.0
    if blocks.q.size:
        dev = blocks.q.astype(np.float64) - mu_q
        total += float(np.dot(dev, dev))
    if blocks.const_outliers.size:
        dev_c = blocks.const_outliers.astype(np.float64) - mu_q
        total += float((blocks.const_lens * dev_c * dev_c).sum())
    return total


def mean(c: SZOpsCompressed) -> float:
    """Mean of the represented array, computed without full decompression.

    Equals ``decompress(c).mean()`` up to float64 summation order.
    """
    blocks = stored_quantized(c)
    n = c.n_elements
    return 2.0 * c.eps * (_quantized_sum(blocks) / n)


def variance(c: SZOpsCompressed, ddof: int = 0) -> float:
    """Variance of the represented array (two-pass, quantized domain).

    ``ddof`` matches NumPy's convention (0 = population variance).
    """
    blocks = stored_quantized(c)
    n = c.n_elements
    if n - ddof <= 0:
        raise ValueError(f"variance needs n - ddof > 0, got n={n}, ddof={ddof}")
    mu_q = _quantized_sum(blocks) / n
    ssd = _quantized_sq_dev(blocks, mu_q)
    return (2.0 * c.eps) ** 2 * (ssd / (n - ddof))


def std(c: SZOpsCompressed, ddof: int = 0) -> float:
    """Standard deviation: the square root of :func:`variance` (Section V-B.3)."""
    return math.sqrt(variance(c, ddof=ddof))


def block_means(c: SZOpsCompressed) -> np.ndarray:
    """Per-block means — the paper notes the mean kernel supports these too.

    Returns a float64 array of length ``c.n_blocks`` where entry ``b`` is
    the mean of the elements of block ``b`` in the represented array.
    """
    blocks = stored_quantized(c)
    layout = c.layout
    lens = layout.lengths().astype(np.float64)
    sums = np.empty(layout.n_blocks, dtype=np.float64)
    if blocks.const_outliers.size:
        # Widen before multiplying: outlier * block-length products of two
        # int64 planes can exceed int64 near the Q_LIMIT guard.
        sums[~blocks.stored_mask] = (
            blocks.const_outliers.astype(np.float64) * blocks.const_lens
        )
    if blocks.q.size:
        from repro.bitstream import exclusive_cumsum

        starts = exclusive_cumsum(blocks.lens)
        sums[blocks.stored_mask] = np.add.reduceat(
            blocks.q.astype(np.float64), starts
        )
    return 2.0 * c.eps * (sums / lens)


def summary_statistics(c: SZOpsCompressed, ddof: int = 0) -> dict[str, float]:
    """Mean, variance and standard deviation in one partial decode.

    Decodes the stored blocks once and derives all three reductions, which
    is cheaper than calling the three functions separately when all values
    are needed (e.g. the in-situ statistics example).
    """
    blocks = stored_quantized(c)
    n = c.n_elements
    mu_q = _quantized_sum(blocks) / n
    ssd = _quantized_sq_dev(blocks, mu_q)
    var = (2.0 * c.eps) ** 2 * (ssd / (n - ddof))
    return {
        "mean": 2.0 * c.eps * mu_q,
        "variance": var,
        "std": math.sqrt(var),
    }


def minimum(c: SZOpsCompressed) -> float:
    """Minimum of the represented array (Section III names max/min as
    computation-as-output examples; same partial-decode machinery)."""
    blocks = stored_quantized(c)
    candidates = []
    if blocks.q.size:
        candidates.append(int(blocks.q.min()))
    if blocks.const_outliers.size:
        candidates.append(int(blocks.const_outliers.min()))
    if not candidates:
        raise ValueError("cannot take the minimum of an empty container")
    return 2.0 * c.eps * min(candidates)


def maximum(c: SZOpsCompressed) -> float:
    """Maximum of the represented array (see :func:`minimum`)."""
    blocks = stored_quantized(c)
    candidates = []
    if blocks.q.size:
        candidates.append(int(blocks.q.max()))
    if blocks.const_outliers.size:
        candidates.append(int(blocks.const_outliers.max()))
    if not candidates:
        raise ValueError("cannot take the maximum of an empty container")
    return 2.0 * c.eps * max(candidates)


def value_range(c: SZOpsCompressed) -> float:
    """``max - min`` of the represented array in one partial decode."""
    blocks = stored_quantized(c)
    lo: list[int] = []
    hi: list[int] = []
    if blocks.q.size:
        lo.append(int(blocks.q.min()))
        hi.append(int(blocks.q.max()))
    if blocks.const_outliers.size:
        lo.append(int(blocks.const_outliers.min()))
        hi.append(int(blocks.const_outliers.max()))
    if not lo:
        raise ValueError("cannot take the range of an empty container")
    return 2.0 * c.eps * (max(hi) - min(lo))
