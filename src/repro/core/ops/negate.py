"""Negation in fully compressed space (Section V-A.1).

Negating every element of the represented array only requires flipping the
stored sign bitmap and negating the outlier plane — the fixed-length payload
(the delta magnitudes) is untouched, so the operation runs in *fully
compressed space*: no payload byte is read or written.

The result is exact: ``decompress(negate(c)) == -decompress(c)`` bit for
bit, and the error bound versus the negated original data is therefore the
same ``eps`` the input stream carried.
"""

from __future__ import annotations

import numpy as np

from repro.core.format import SZOpsCompressed

__all__ = ["negate"]

#: How each exported operation propagates the stream's error bound
#: (vocabulary in docs/ANALYSIS.md, checked by lint rule SZL005).
ERROR_PROPAGATION = {"negation": "exact"}


def _flip_sign_bits(sign_bytes: np.ndarray, n_bits: int) -> np.ndarray:
    """Invert a packed bitmap, keeping the final byte's padding bits zero."""
    flipped = np.bitwise_xor(sign_bytes, np.uint8(0xFF))
    pad = sign_bytes.size * 8 - n_bits
    if pad and flipped.size:
        # Clear the low `pad` bits of the last byte so serialization stays
        # canonical (decoders never read them, but round-trip equality of
        # the byte stream is a nice property to keep).
        flipped[-1] &= np.uint8((0xFF << pad) & 0xFF)
    return flipped


def negate(c: SZOpsCompressed, inplace: bool = False) -> SZOpsCompressed:
    """Return a compressed stream representing the elementwise negation.

    Cost: O(n_blocks) for the outlier plane plus O(sign-section bytes) for
    the bitmap flip — a small, fixed fraction of the compressed size and
    independent of the payload, which is why Figure 5/6 show negation as
    the fastest SZOps operation.
    """
    out = c if inplace else c.copy()
    n_sign_bits = int(out.stored_lengths().sum())
    np.negative(out.outliers, out=out.outliers)
    out.sign_bytes = _flip_sign_bits(out.sign_bytes, n_sign_bits)
    return out
