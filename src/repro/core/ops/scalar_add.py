"""Scalar addition and subtraction in fully compressed space (Section V-A.2/3).

Adding a constant ``s`` shifts every quantized value by the same amount, so
every intra-block delta is unchanged — only the per-block outliers (each
block's first quantized value) move.  SZOps therefore quantizes the scalar
once, ``rho_s = floor((s + eps) / (2 eps))``, and adds (or subtracts) it to
the outlier plane.  The sign bitmap and fixed-length payload are untouched:
the operation runs in fully compressed space.

Error semantics: the result decodes to ``x_hat + 2*eps*rho_s``, and
``|2*eps*rho_s - s| <= eps``, so the output is within ``eps`` of
``x_hat + s`` (and within ``2*eps`` of ``x + s``).  The stream's recorded
error bound is unchanged, matching the paper's Table II statement that all
operations preserve error-boundedness because inverse quantization is never
applied.

Note on the paper's worked example: Section V-A.2 prints a mutated delta
array and sign bitmap after the addition, which contradicts the
construction one paragraph earlier (a uniform shift of the quantization
bins cannot change their differences).  We implement the mathematically
consistent semantics — only the outlier plane changes — which is also the
only reading under which the operation is "fully compressed space" as the
paper claims.  DESIGN.md records this deviation.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.ops._partial import Q_LIMIT
from repro.core.quantize import dequantize_scalar, quantize_scalar

__all__ = [
    "scalar_add",
    "scalar_subtract",
    "quantized_scalar_shift",
    "shift_outliers",
]

#: How each exported operation propagates the stream's error bound
#: (vocabulary in docs/ANALYSIS.md, checked by lint rule SZL005).
ERROR_PROPAGATION = {
    "scalar_add": "preserved",
    "scalar_subtract": "preserved",
}


def quantized_scalar_shift(s: float, eps: float) -> tuple[int, float]:
    """Quantize the scalar operand; returns (bin index, representative value)."""
    rho = quantize_scalar(s, eps)
    return rho, dequantize_scalar(rho, eps)


def shift_outliers(out: SZOpsCompressed, rho: int) -> None:
    """Shift the outlier plane by ``rho`` bins, guarding int64 overflow.

    The outlier plane holds quantized first values, guarded to
    ``|q| < Q_LIMIT`` at compression time; an unchecked shift by a huge
    quantized scalar could wrap int64 and decode to a valid-looking stream
    representing garbage.  Shared by the eager kernels below and the lazy
    fusion runtime so both paths fail identically.
    """
    rho = int(rho)
    if rho == 0 or not out.outliers.size:
        return
    peak = int(np.abs(out.outliers).max()) + abs(rho)
    if peak >= int(Q_LIMIT):
        raise OperationError(
            "scalar shift overflows the quantized integer range; use a "
            "larger error bound or a smaller scalar"
        )
    out.outliers += rho  # szops: ignore[SZL001] -- peak bounded by Q_LIMIT above


def scalar_add(c: SZOpsCompressed, s: float, inplace: bool = False) -> SZOpsCompressed:
    """Add the scalar ``s`` to every element, in fully compressed space.

    Cost: one integer add over the outlier plane — O(n_blocks), independent
    of the array size and of the payload, the cheapest operation after
    negation in Figures 5/6.
    """
    out = c if inplace else c.copy()
    rho, _ = quantized_scalar_shift(s, out.eps)
    shift_outliers(out, rho)
    return out


def scalar_subtract(
    c: SZOpsCompressed, s: float, inplace: bool = False
) -> SZOpsCompressed:
    """Subtract the scalar ``s`` from every element (Section V-A.3).

    Mirrors :func:`scalar_add` with the quantized scalar *deducted* from the
    outliers, exactly as the paper specifies (note this differs from
    ``scalar_add(c, -s)`` by at most one quantization bin, since
    ``floor((-s+eps)/2eps) != -floor((s+eps)/2eps)`` in general; both
    readings stay within the error bound).
    """
    out = c if inplace else c.copy()
    rho, _ = quantized_scalar_shift(s, out.eps)
    shift_outliers(out, -rho)
    return out


def _require_same_geometry(a: SZOpsCompressed, b: SZOpsCompressed) -> None:
    if a.shape != b.shape or a.block_size != b.block_size:
        raise OperationError(
            "compressed operands must share shape and block size; got "
            f"{a.shape}/{a.block_size} vs {b.shape}/{b.block_size}"
        )
