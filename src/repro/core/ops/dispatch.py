"""Operation registry and dispatch for the seven SZOps operations.

Table II of the paper enumerates the supported operations together with
their type (univariate operation vs. univariate reduction) and result type
(compression-as-output vs. computation-as-output).  This module encodes
that table as data so the workflow drivers, the benchmark harness, and the
Table V assertions can iterate the operations uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.ops import multivariate
from repro.core.ops.negate import ERROR_PROPAGATION as _NEGATE_PROPAGATION
from repro.core.ops.negate import negate
from repro.core.ops.reductions import ERROR_PROPAGATION as _REDUCE_PROPAGATION
from repro.core.ops.reductions import maximum, mean, minimum, std, variance
from repro.core.ops.scalar_add import ERROR_PROPAGATION as _SHIFT_PROPAGATION
from repro.core.ops.scalar_add import scalar_add, scalar_subtract
from repro.core.ops.scalar_mul import ERROR_PROPAGATION as _SCALE_PROPAGATION
from repro.core.ops.scalar_mul import scalar_multiply

__all__ = [
    "OpSpec",
    "BivariateOpSpec",
    "OPERATIONS",
    "BIVARIATE_OPERATIONS",
    "FUSABLE_OPERATIONS",
    "CHAIN_REDUCTIONS",
    "apply_operation",
    "apply_bivariate",
    "apply_chain",
    "normalize_chain",
    "operation_names",
]

#: Error-bound propagation mode of every registered operation, collected
#: from the op modules' ERROR_PROPAGATION declarations (lint rule SZL005
#: keeps the declarations present and well-formed at the source).
ERROR_PROPAGATION: dict[str, str] = {
    **_NEGATE_PROPAGATION,
    **_SHIFT_PROPAGATION,
    **_SCALE_PROPAGATION,
    **_REDUCE_PROPAGATION,
    **multivariate.ERROR_PROPAGATION,
}


@dataclass(frozen=True)
class OpSpec:
    """Metadata row of Table II plus the executable kernel.

    Attributes
    ----------
    name : canonical operation name.
    kind : ``"operation"`` (pointwise) or ``"reduction"``.
    result : ``"compression"`` (a new compressed stream) or
        ``"computation"`` (a scalar).
    space : ``"full"`` (fully compressed space — no payload touched),
        ``"partial"`` (partial decompression to the quantized domain).
    needs_scalar : whether the kernel takes a scalar operand.
    fn : the kernel; signature ``fn(c)`` or ``fn(c, s)``.
    error_propagation : how the operation propagates the stream's error
        bound, sourced from the op module's ERROR_PROPAGATION declaration
        (``exact`` / ``preserved`` / ``scaled`` / ``bounded-additive`` /
        ``computation``; see docs/ANALYSIS.md).
    """

    name: str
    kind: str
    result: str
    space: str
    needs_scalar: bool
    fn: Callable[..., Any]
    error_propagation: str = "computation"


def _spec(name: str, kind: str, result: str, space: str, needs_scalar: bool, fn) -> OpSpec:
    return OpSpec(name, kind, result, space, needs_scalar, fn, ERROR_PROPAGATION[name])


OPERATIONS: dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        _spec("negation", "operation", "compression", "full", False, negate),
        _spec("scalar_add", "operation", "compression", "full", True, scalar_add),
        _spec(
            "scalar_subtract",
            "operation",
            "compression",
            "full",
            True,
            scalar_subtract,
        ),
        _spec(
            "scalar_multiply",
            "operation",
            "compression",
            "partial",
            True,
            scalar_multiply,
        ),
        _spec("mean", "reduction", "computation", "partial", False, mean),
        _spec("variance", "reduction", "computation", "partial", False, variance),
        _spec("std", "reduction", "computation", "partial", False, std),
    ]
}


@dataclass(frozen=True)
class BivariateOpSpec:
    """A registered two-stream operation (Section VII future work).

    Same registry idiom as :class:`OpSpec`, but the kernel takes two
    compressed operands sharing geometry and error bound.
    """

    name: str
    result: str
    space: str
    error_propagation: str
    fn: Callable[[SZOpsCompressed, SZOpsCompressed], Any]


BIVARIATE_OPERATIONS: dict[str, BivariateOpSpec] = {
    spec.name: spec
    for spec in [
        BivariateOpSpec(
            "add", "compression", "partial", ERROR_PROPAGATION["add"], multivariate.add
        ),
        BivariateOpSpec(
            "subtract",
            "compression",
            "partial",
            ERROR_PROPAGATION["subtract"],
            multivariate.subtract,
        ),
        BivariateOpSpec(
            "dot", "computation", "partial", ERROR_PROPAGATION["dot"], multivariate.dot
        ),
        BivariateOpSpec(
            "l2_distance",
            "computation",
            "partial",
            ERROR_PROPAGATION["l2_distance"],
            multivariate.l2_distance,
        ),
        BivariateOpSpec(
            "cosine_similarity",
            "computation",
            "partial",
            ERROR_PROPAGATION["cosine_similarity"],
            multivariate.cosine_similarity,
        ),
    ]
}


def apply_bivariate(
    a: SZOpsCompressed, b: SZOpsCompressed, name: str
) -> SZOpsCompressed | float:
    """Apply a named two-stream operation (add/subtract/distances)."""
    try:
        spec = BIVARIATE_OPERATIONS[name]
    except KeyError:
        raise OperationError(
            f"unknown bivariate operation {name!r}; valid: "
            f"{', '.join(BIVARIATE_OPERATIONS)}"
        ) from None
    return spec.fn(a, b)


def operation_names() -> list[str]:
    """The seven operation names, in the paper's Table II order."""
    return list(OPERATIONS)


def apply_operation(
    c: SZOpsCompressed, name: str, scalar: float | None = None
) -> SZOpsCompressed | float:
    """Apply a named operation to a compressed stream.

    Returns either a new :class:`SZOpsCompressed` (compression-as-output)
    or a Python float (computation-as-output), per Table II.
    """
    try:
        spec = OPERATIONS[name]
    except KeyError:
        raise OperationError(
            f"unknown operation {name!r}; valid: {', '.join(OPERATIONS)}"
        ) from None
    if spec.needs_scalar:
        if scalar is None:
            raise OperationError(f"operation {name!r} requires a scalar operand")
        return spec.fn(c, scalar)
    if scalar is not None:
        raise OperationError(f"operation {name!r} takes no scalar operand")
    return spec.fn(c)


# ---------------------------------------------------------------------------
# fusion-aware chain dispatch
# ---------------------------------------------------------------------------

#: Pointwise operations the lazy runtime composes into one pending
#: ``(a·x + b)``-style transform (see :mod:`repro.runtime.lazy`).
FUSABLE_OPERATIONS = frozenset(
    {"negation", "scalar_add", "scalar_subtract", "scalar_multiply"}
)

#: Reductions accepted as the terminal step of a chain.  ``minimum`` /
#: ``maximum`` are not Table II rows but use the same partial-decode
#: machinery, so chains may end on them too.
CHAIN_REDUCTIONS: dict[str, Callable[[SZOpsCompressed], float]] = {
    "mean": mean,
    "variance": variance,
    "std": std,
    "minimum": minimum,
    "maximum": maximum,
}

def normalize_chain(
    steps: Iterable,
) -> list[tuple[str, float | None]]:
    """Validate a chain spec into ``[(name, scalar), ...]``.

    Accepts bare names (``"negation"``), ``(name, scalar)`` pairs, and
    ``"name=scalar"`` strings (the CLI syntax).  Reductions are only valid
    as the final step; scalar arity is checked against the op table.
    """
    normalized: list[tuple[str, float | None]] = []
    for step in steps:
        if isinstance(step, str):
            name, sep, text = step.partition("=")
            if sep:
                try:
                    scalar = float(text)
                except ValueError:
                    raise OperationError(
                        f"bad scalar in chain step {step!r}"
                    ) from None
            else:
                scalar = None
        else:
            try:
                name, scalar = step
            except (TypeError, ValueError):
                raise OperationError(
                    f"chain steps must be 'name', 'name=scalar' or "
                    f"(name, scalar); got {step!r}"
                ) from None
        if name in CHAIN_REDUCTIONS:
            if scalar is not None:
                raise OperationError(f"reduction {name!r} takes no scalar operand")
        else:
            try:
                spec = OPERATIONS[name]
            except KeyError:
                valid = ", ".join(dict.fromkeys([*OPERATIONS, *CHAIN_REDUCTIONS]))
                raise OperationError(
                    f"unknown operation {name!r}; valid: {valid}"
                ) from None
            if spec.needs_scalar and scalar is None:
                raise OperationError(f"operation {name!r} requires a scalar operand")
            if not spec.needs_scalar and scalar is not None:
                raise OperationError(f"operation {name!r} takes no scalar operand")
        normalized.append((name, scalar))
    for i, (name, _) in enumerate(normalized):
        if name in CHAIN_REDUCTIONS and i != len(normalized) - 1:
            raise OperationError(
                f"reduction {name!r} must be the final step of a chain"
            )
    return normalized


def apply_chain(
    c: SZOpsCompressed,
    steps: Sequence,
    fused: bool = True,
    executor=None,
) -> SZOpsCompressed | float:
    """Apply a chain of operations, fusing pointwise ops when possible.

    With ``fused=True`` (default) the pointwise prefix is composed lazily by
    :class:`repro.runtime.lazy.LazyStream` — one decode and at most one
    encode for the whole chain; a terminal reduction skips the encode
    entirely.  ``fused=False`` replays the exact same chain eagerly, one
    operation at a time (the pre-runtime behavior; results are identical).
    ``executor`` (a :class:`~repro.parallel.executor.ChunkedExecutor` or a
    thread count) routes fused reduction partial sums through the parallel
    executor.
    """
    normalized = normalize_chain(steps)
    if not fused:
        result: SZOpsCompressed | float = c
        for name, scalar in normalized:
            if name in CHAIN_REDUCTIONS:
                result = CHAIN_REDUCTIONS[name](result)
            else:
                result = apply_operation(result, name, scalar)
        return result

    from repro.runtime.lazy import LazyStream

    chain = LazyStream(c)
    for name, scalar in normalized:
        if name in CHAIN_REDUCTIONS:
            if name in ("minimum", "maximum"):
                return getattr(chain, name)()
            kwargs = {"executor": executor} if executor is not None else {}
            return getattr(chain, name)(**kwargs)
        chain = chain.apply(name, scalar)
    return chain.materialize()
