"""Operation registry and dispatch for the seven SZOps operations.

Table II of the paper enumerates the supported operations together with
their type (univariate operation vs. univariate reduction) and result type
(compression-as-output vs. computation-as-output).  This module encodes
that table as data so the workflow drivers, the benchmark harness, and the
Table V assertions can iterate the operations uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.ops.negate import negate
from repro.core.ops.reductions import mean, std, variance
from repro.core.ops.scalar_add import scalar_add, scalar_subtract
from repro.core.ops.scalar_mul import scalar_multiply

__all__ = ["OpSpec", "OPERATIONS", "apply_operation", "operation_names"]


@dataclass(frozen=True)
class OpSpec:
    """Metadata row of Table II plus the executable kernel.

    Attributes
    ----------
    name : canonical operation name.
    kind : ``"operation"`` (pointwise) or ``"reduction"``.
    result : ``"compression"`` (a new compressed stream) or
        ``"computation"`` (a scalar).
    space : ``"full"`` (fully compressed space — no payload touched),
        ``"partial"`` (partial decompression to the quantized domain).
    needs_scalar : whether the kernel takes a scalar operand.
    fn : the kernel; signature ``fn(c)`` or ``fn(c, s)``.
    """

    name: str
    kind: str
    result: str
    space: str
    needs_scalar: bool
    fn: Callable[..., Any]


OPERATIONS: dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        OpSpec("negation", "operation", "compression", "full", False, negate),
        OpSpec("scalar_add", "operation", "compression", "full", True, scalar_add),
        OpSpec(
            "scalar_subtract",
            "operation",
            "compression",
            "full",
            True,
            scalar_subtract,
        ),
        OpSpec(
            "scalar_multiply",
            "operation",
            "compression",
            "partial",
            True,
            scalar_multiply,
        ),
        OpSpec("mean", "reduction", "computation", "partial", False, mean),
        OpSpec("variance", "reduction", "computation", "partial", False, variance),
        OpSpec("std", "reduction", "computation", "partial", False, std),
    ]
}


def operation_names() -> list[str]:
    """The seven operation names, in the paper's Table II order."""
    return list(OPERATIONS)


def apply_operation(
    c: SZOpsCompressed, name: str, scalar: float | None = None
) -> SZOpsCompressed | float:
    """Apply a named operation to a compressed stream.

    Returns either a new :class:`SZOpsCompressed` (compression-as-output)
    or a Python float (computation-as-output), per Table II.
    """
    try:
        spec = OPERATIONS[name]
    except KeyError:
        raise OperationError(
            f"unknown operation {name!r}; valid: {', '.join(OPERATIONS)}"
        ) from None
    if spec.needs_scalar:
        if scalar is None:
            raise OperationError(f"operation {name!r} requires a scalar operand")
        return spec.fn(c, scalar)
    if scalar is not None:
        raise OperationError(f"operation {name!r} takes no scalar operand")
    return spec.fn(c)
