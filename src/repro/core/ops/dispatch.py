"""Operation registry and dispatch for the seven SZOps operations.

Table II of the paper enumerates the supported operations together with
their type (univariate operation vs. univariate reduction) and result type
(compression-as-output vs. computation-as-output).  This module encodes
that table as data so the workflow drivers, the benchmark harness, and the
Table V assertions can iterate the operations uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.ops.negate import negate
from repro.core.ops.reductions import maximum, mean, minimum, std, variance
from repro.core.ops.scalar_add import scalar_add, scalar_subtract
from repro.core.ops.scalar_mul import scalar_multiply

__all__ = [
    "OpSpec",
    "OPERATIONS",
    "FUSABLE_OPERATIONS",
    "CHAIN_REDUCTIONS",
    "apply_operation",
    "apply_chain",
    "normalize_chain",
    "operation_names",
]


@dataclass(frozen=True)
class OpSpec:
    """Metadata row of Table II plus the executable kernel.

    Attributes
    ----------
    name : canonical operation name.
    kind : ``"operation"`` (pointwise) or ``"reduction"``.
    result : ``"compression"`` (a new compressed stream) or
        ``"computation"`` (a scalar).
    space : ``"full"`` (fully compressed space — no payload touched),
        ``"partial"`` (partial decompression to the quantized domain).
    needs_scalar : whether the kernel takes a scalar operand.
    fn : the kernel; signature ``fn(c)`` or ``fn(c, s)``.
    """

    name: str
    kind: str
    result: str
    space: str
    needs_scalar: bool
    fn: Callable[..., Any]


OPERATIONS: dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        OpSpec("negation", "operation", "compression", "full", False, negate),
        OpSpec("scalar_add", "operation", "compression", "full", True, scalar_add),
        OpSpec(
            "scalar_subtract",
            "operation",
            "compression",
            "full",
            True,
            scalar_subtract,
        ),
        OpSpec(
            "scalar_multiply",
            "operation",
            "compression",
            "partial",
            True,
            scalar_multiply,
        ),
        OpSpec("mean", "reduction", "computation", "partial", False, mean),
        OpSpec("variance", "reduction", "computation", "partial", False, variance),
        OpSpec("std", "reduction", "computation", "partial", False, std),
    ]
}


def operation_names() -> list[str]:
    """The seven operation names, in the paper's Table II order."""
    return list(OPERATIONS)


def apply_operation(
    c: SZOpsCompressed, name: str, scalar: float | None = None
) -> SZOpsCompressed | float:
    """Apply a named operation to a compressed stream.

    Returns either a new :class:`SZOpsCompressed` (compression-as-output)
    or a Python float (computation-as-output), per Table II.
    """
    try:
        spec = OPERATIONS[name]
    except KeyError:
        raise OperationError(
            f"unknown operation {name!r}; valid: {', '.join(OPERATIONS)}"
        ) from None
    if spec.needs_scalar:
        if scalar is None:
            raise OperationError(f"operation {name!r} requires a scalar operand")
        return spec.fn(c, scalar)
    if scalar is not None:
        raise OperationError(f"operation {name!r} takes no scalar operand")
    return spec.fn(c)


# ---------------------------------------------------------------------------
# fusion-aware chain dispatch
# ---------------------------------------------------------------------------

#: Pointwise operations the lazy runtime composes into one pending
#: ``(a·x + b)``-style transform (see :mod:`repro.runtime.lazy`).
FUSABLE_OPERATIONS = frozenset(
    {"negation", "scalar_add", "scalar_subtract", "scalar_multiply"}
)

#: Reductions accepted as the terminal step of a chain.  ``minimum`` /
#: ``maximum`` are not Table II rows but use the same partial-decode
#: machinery, so chains may end on them too.
CHAIN_REDUCTIONS: dict[str, Callable[[SZOpsCompressed], float]] = {
    "mean": mean,
    "variance": variance,
    "std": std,
    "minimum": minimum,
    "maximum": maximum,
}

def normalize_chain(
    steps: Iterable,
) -> list[tuple[str, float | None]]:
    """Validate a chain spec into ``[(name, scalar), ...]``.

    Accepts bare names (``"negation"``), ``(name, scalar)`` pairs, and
    ``"name=scalar"`` strings (the CLI syntax).  Reductions are only valid
    as the final step; scalar arity is checked against the op table.
    """
    normalized: list[tuple[str, float | None]] = []
    for step in steps:
        if isinstance(step, str):
            name, sep, text = step.partition("=")
            if sep:
                try:
                    scalar = float(text)
                except ValueError:
                    raise OperationError(
                        f"bad scalar in chain step {step!r}"
                    ) from None
            else:
                scalar = None
        else:
            try:
                name, scalar = step
            except (TypeError, ValueError):
                raise OperationError(
                    f"chain steps must be 'name', 'name=scalar' or "
                    f"(name, scalar); got {step!r}"
                ) from None
        if name in CHAIN_REDUCTIONS:
            if scalar is not None:
                raise OperationError(f"reduction {name!r} takes no scalar operand")
        else:
            try:
                spec = OPERATIONS[name]
            except KeyError:
                valid = ", ".join(dict.fromkeys([*OPERATIONS, *CHAIN_REDUCTIONS]))
                raise OperationError(
                    f"unknown operation {name!r}; valid: {valid}"
                ) from None
            if spec.needs_scalar and scalar is None:
                raise OperationError(f"operation {name!r} requires a scalar operand")
            if not spec.needs_scalar and scalar is not None:
                raise OperationError(f"operation {name!r} takes no scalar operand")
        normalized.append((name, scalar))
    for i, (name, _) in enumerate(normalized):
        if name in CHAIN_REDUCTIONS and i != len(normalized) - 1:
            raise OperationError(
                f"reduction {name!r} must be the final step of a chain"
            )
    return normalized


def apply_chain(
    c: SZOpsCompressed,
    steps: Sequence,
    fused: bool = True,
    executor=None,
) -> SZOpsCompressed | float:
    """Apply a chain of operations, fusing pointwise ops when possible.

    With ``fused=True`` (default) the pointwise prefix is composed lazily by
    :class:`repro.runtime.lazy.LazyStream` — one decode and at most one
    encode for the whole chain; a terminal reduction skips the encode
    entirely.  ``fused=False`` replays the exact same chain eagerly, one
    operation at a time (the pre-runtime behavior; results are identical).
    ``executor`` (a :class:`~repro.parallel.executor.ChunkedExecutor` or a
    thread count) routes fused reduction partial sums through the parallel
    executor.
    """
    normalized = normalize_chain(steps)
    if not fused:
        result: SZOpsCompressed | float = c
        for name, scalar in normalized:
            if name in CHAIN_REDUCTIONS:
                result = CHAIN_REDUCTIONS[name](result)
            else:
                result = apply_operation(result, name, scalar)
        return result

    from repro.runtime.lazy import LazyStream

    chain = LazyStream(c)
    for name, scalar in normalized:
        if name in CHAIN_REDUCTIONS:
            if name in ("minimum", "maximum"):
                return getattr(chain, name)()
            kwargs = {"executor": executor} if executor is not None else {}
            return getattr(chain, name)(**kwargs)
        chain = chain.apply(name, scalar)
    return chain.materialize()
