"""Scalar multiplication in partially decompressed space (Section V-A.4).

Multiplication does not commute with the Lorenzo deltas' fixed-length
encoding the way a uniform shift does, so the paper reverts the non-constant
blocks to their quantized values, multiplies, and re-encodes.  Following the
worked example (s = 3.14, eps = 0.01): the scalar is quantized to
``rho_s``, every quantized value is scaled by the *representative* value
``s~ = 2*eps*rho_s`` and re-quantized by rounding::

    q'_i = round(q_i * s~)            # equivalently round(q_i * rho_s * 2eps)

Constant blocks never touch the payload: all their elements equal the
outlier, so ``O' = round(O * s~)`` transforms them in O(1) per block and
they *remain* constant — this is the "partial decompression + constant
blocks" fast path of Table V.

Error semantics: the output decodes to ``2*eps*q'`` with
``|2*eps*q' - s*x_hat| <= eps + |x_hat| * |s~ - s|`` where
``|s~ - s| <= eps``; i.e. a pointwise absolute term plus a relative term
proportional to the scalar's own quantization error, as inherent to the
paper's scheme.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream import exclusive_cumsum
from repro.core.encode import block_widths, encode_block_sections
from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.ops._partial import stored_quantized
from repro.core.ops.scalar_add import quantized_scalar_shift

__all__ = ["scalar_multiply"]

_Q_LIMIT = np.int64(1) << 62


def _requantize(q: np.ndarray, factor: float) -> np.ndarray:
    """``round(q * factor)`` with an overflow guard on the int64 result."""
    scaled = np.rint(q.astype(np.float64) * factor)
    if scaled.size and np.abs(scaled).max() >= float(_Q_LIMIT):
        raise OperationError(
            "scalar multiplication overflows the quantized integer range; "
            "use a larger error bound or a smaller scalar"
        )
    return scaled.astype(np.int64)


def scalar_multiply(c: SZOpsCompressed, s: float) -> SZOpsCompressed:
    """Multiply every element by the scalar ``s``, re-encoding in place.

    The non-constant blocks are decoded to quantized integers (BF^-1 and
    Lorenzo^-1 only — never inverse quantization), scaled, and re-encoded;
    constant blocks are transformed through their outlier alone.
    """
    rho, s_rep = quantized_scalar_shift(s, c.eps)
    blocks = stored_quantized(c)
    layout = c.layout
    lens = layout.lengths()
    stored = blocks.stored_mask

    new_outliers = np.empty(layout.n_blocks, dtype=np.int64)
    new_widths = np.zeros(layout.n_blocks, dtype=np.uint8)

    # Constant blocks: O(1) per block, no payload involved.
    new_outliers[~stored] = _requantize(blocks.const_outliers, s_rep)

    if blocks.q.size:
        q_new = _requantize(blocks.q, s_rep)
        # Re-apply the Lorenzo operator within each stored block.
        starts = exclusive_cumsum(blocks.lens)
        deltas = np.empty_like(q_new)
        deltas[0] = 0
        np.subtract(q_new[1:], q_new[:-1], out=deltas[1:])
        deltas[starts] = 0
        new_outliers[stored] = q_new[starts]
        signs = (deltas < 0).view(np.uint8)
        mags = np.abs(deltas).astype(np.uint64)
        stored_widths = block_widths(mags, blocks.lens)
        new_widths[stored] = stored_widths
        sign_bytes, payload_bytes = encode_block_sections(
            mags, signs, stored_widths, blocks.lens
        )
    else:
        sign_bytes = np.zeros(0, dtype=np.uint8)
        payload_bytes = np.zeros(0, dtype=np.uint8)

    return SZOpsCompressed(
        shape=c.shape,
        dtype=c.dtype,
        eps=c.eps,
        block_size=c.block_size,
        widths=new_widths,
        outliers=new_outliers,
        sign_bytes=sign_bytes,
        payload_bytes=payload_bytes,
    )
