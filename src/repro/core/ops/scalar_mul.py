"""Scalar multiplication in partially decompressed space (Section V-A.4).

Multiplication does not commute with the Lorenzo deltas' fixed-length
encoding the way a uniform shift does, so the paper reverts the non-constant
blocks to their quantized values, multiplies, and re-encodes.  Following the
worked example (s = 3.14, eps = 0.01): the scalar is quantized to
``rho_s``, every quantized value is scaled by the *representative* value
``s~ = 2*eps*rho_s`` and re-quantized by rounding::

    q'_i = round(q_i * s~)            # equivalently round(q_i * rho_s * 2eps)

Constant blocks never touch the payload: all their elements equal the
outlier, so ``O' = round(O * s~)`` transforms them in O(1) per block and
they *remain* constant — this is the "partial decompression + constant
blocks" fast path of Table V.

Error semantics: the output decodes to ``2*eps*q'`` with
``|2*eps*q' - s*x_hat| <= eps + |x_hat| * |s~ - s|`` where
``|s~ - s| <= eps``; i.e. a pointwise absolute term plus a relative term
proportional to the scalar's own quantization error, as inherent to the
paper's scheme.
"""

from __future__ import annotations

from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.ops._partial import rebuild_stored, requantize, stored_quantized
from repro.core.ops.scalar_add import quantized_scalar_shift

__all__ = ["scalar_multiply"]

#: How each exported operation propagates the stream's error bound
#: (vocabulary in docs/ANALYSIS.md, checked by lint rule SZL005).
ERROR_PROPAGATION = {"scalar_multiply": "scaled"}


def scalar_multiply(c: SZOpsCompressed, s: float) -> SZOpsCompressed:
    """Multiply every element by the scalar ``s``, re-encoding in place.

    The non-constant blocks are decoded to quantized integers (BF^-1 and
    Lorenzo^-1 only — never inverse quantization), scaled, and re-encoded;
    constant blocks are transformed through their outlier alone.

    Overflow contract: any factor that would push a quantized value to or
    beyond ±2^62 raises :class:`OperationError` — including factors whose
    float64 product overflows to infinity, and scalars so large that their
    own quantization (``floor((s + eps) / 2eps)``) leaves the int64-safe
    range.  ``s = 0`` is well-defined and yields an all-constant zero
    stream.
    """
    try:
        _, s_rep = quantized_scalar_shift(s, c.eps)
    except (OverflowError, ValueError) as exc:
        raise OperationError(
            f"scalar {s!r} cannot be quantized at eps {c.eps!r}: {exc}"
        ) from None
    blocks = stored_quantized(c)
    # Constant blocks: O(1) per block, no payload involved; stored blocks
    # are decoded, scaled in the quantized integer domain, and re-encoded.
    const_outliers = requantize(blocks.const_outliers, s_rep)
    q_new = requantize(blocks.q, s_rep)
    return rebuild_stored(c, blocks, q_new, const_outliers)
