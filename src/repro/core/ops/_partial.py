"""Partial-decompression helpers shared by the compressed-domain operations.

Scalar multiplication and the reductions operate in the *quantized integer
domain*: they decode the fixed-length payload and invert the Lorenzo
operator, but never apply inverse quantization (Table II's note — this is
what preserves error-boundedness).  Constant blocks are never decoded at
all; their quantized values are known from the outlier plane alone, which
is the "excluding constant block computations" optimization of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitstream import exclusive_cumsum
from repro.core.encode import decode_stored_deltas
from repro.core.format import SZOpsCompressed

__all__ = ["StoredBlocks", "stored_quantized", "ragged_cumsum"]


def ragged_cumsum(values: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Per-block inclusive prefix sum over a concatenated ragged array.

    Requires ``values[block_start] == 0`` for every block (true for Lorenzo
    delta arrays, whose block-start slot is always zero) — under that
    precondition the per-block cumulative sum equals the global cumulative
    sum minus the global sum at each block's start.
    """
    v = np.asarray(values, dtype=np.int64)
    lens = np.asarray(lens, dtype=np.int64)
    if v.size == 0:
        return v.copy()
    total = np.cumsum(v)
    starts = exclusive_cumsum(lens)
    base = total[starts]
    return total - np.repeat(base, lens)


@dataclass
class StoredBlocks:
    """Quantized view of a container, split by constant-ness.

    Attributes
    ----------
    q : concatenated quantized integers of the *stored* (non-constant)
        blocks, in block order.
    lens : element counts of the stored blocks.
    stored_mask : boolean over all blocks (True = stored).
    const_outliers : quantized value of each constant block.
    const_lens : element counts of the constant blocks.
    """

    q: np.ndarray
    lens: np.ndarray
    stored_mask: np.ndarray
    const_outliers: np.ndarray
    const_lens: np.ndarray

    @property
    def n_stored_elements(self) -> int:
        return int(self.lens.sum())

    @property
    def n_constant_elements(self) -> int:
        return int(self.const_lens.sum())


def stored_quantized(c: SZOpsCompressed) -> StoredBlocks:
    """Decode only the non-constant blocks of ``c`` to quantized integers."""
    c.validate_structure()
    layout = c.layout
    lens = layout.lengths()
    stored = c.widths > 0
    stored_lens = lens[stored]
    deltas = decode_stored_deltas(
        c.sign_bytes, c.payload_bytes, c.widths[stored], stored_lens
    )
    q = ragged_cumsum(deltas, stored_lens)
    if q.size:
        q += np.repeat(c.outliers[stored], stored_lens)
    return StoredBlocks(
        q=q,
        lens=stored_lens,
        stored_mask=stored,
        const_outliers=c.outliers[~stored],
        const_lens=lens[~stored],
    )
