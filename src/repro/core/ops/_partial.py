"""Partial-decompression helpers shared by the compressed-domain operations.

Scalar multiplication and the reductions operate in the *quantized integer
domain*: they decode the fixed-length payload and invert the Lorenzo
operator, but never apply inverse quantization (Table II's note — this is
what preserves error-boundedness).  Constant blocks are never decoded at
all; their quantized values are known from the outlier plane alone, which
is the "excluding constant block computations" optimization of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitstream import exclusive_cumsum
from repro.core.encode import block_widths, decode_stored_deltas, encode_block_sections
from repro.core.errors import OperationError
from repro.core.format import SZOpsCompressed
from repro.core.quantize import Q_LIMIT

__all__ = [
    "Q_LIMIT",
    "StoredBlocks",
    "stored_quantized",
    "decode_stored_blocks",
    "ragged_cumsum",
    "ensure_quantized_range",
    "requantize",
    "rebuild_stored",
]


def ragged_cumsum(values: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Per-block inclusive prefix sum over a concatenated ragged array.

    Requires ``values[block_start] == 0`` for every block (true for Lorenzo
    delta arrays, whose block-start slot is always zero) — under that
    precondition the per-block cumulative sum equals the global cumulative
    sum minus the global sum at each block's start.
    """
    v = np.asarray(values, dtype=np.int64)
    lens = np.asarray(lens, dtype=np.int64)
    if v.size == 0:
        return v.copy()
    total = np.cumsum(v)
    starts = exclusive_cumsum(lens)
    base = total[starts]
    return total - np.repeat(base, lens)


@dataclass
class StoredBlocks:
    """Quantized view of a container, split by constant-ness.

    Attributes
    ----------
    q : concatenated quantized integers of the *stored* (non-constant)
        blocks, in block order.
    lens : element counts of the stored blocks.
    stored_mask : boolean over all blocks (True = stored).
    const_outliers : quantized value of each constant block.
    const_lens : element counts of the constant blocks.
    """

    q: np.ndarray
    lens: np.ndarray
    stored_mask: np.ndarray
    const_outliers: np.ndarray
    const_lens: np.ndarray

    @property
    def n_stored_elements(self) -> int:
        return int(self.lens.sum())

    @property
    def n_constant_elements(self) -> int:
        return int(self.const_lens.sum())


def stored_quantized(c: SZOpsCompressed) -> StoredBlocks:
    """Decoded quantized view of ``c``, through the decoded-block cache.

    This is the entry point every compressed-domain operation uses.  When
    :mod:`repro.runtime.cache` has an active cache (the default), the
    BF⁻¹ + Lorenzo⁻¹ decode of a given stream runs once and later operations
    on the same stream reuse the cached (read-only) view; with the cache
    disabled this is exactly :func:`decode_stored_blocks`.
    """
    from repro.runtime.cache import active_cache

    cache = active_cache()
    if cache is None:
        return decode_stored_blocks(c)
    return cache.get_blocks(c)


def decode_stored_blocks(c: SZOpsCompressed) -> StoredBlocks:
    """Decode only the non-constant blocks of ``c`` to quantized integers."""
    c.validate_structure()
    layout = c.layout
    lens = layout.lengths()
    stored = c.widths > 0
    stored_lens = lens[stored]
    deltas = decode_stored_deltas(
        c.sign_bytes, c.payload_bytes, c.widths[stored], stored_lens
    )
    q = ragged_cumsum(deltas, stored_lens)
    if q.size:
        # Reconstructs the original quantized values, which compression
        # guarded to |q| < Q_LIMIT — the sum cannot leave int64.
        q += np.repeat(c.outliers[stored], stored_lens)  # szops: ignore[SZL001, SZL101]
    return StoredBlocks(
        q=q,
        lens=stored_lens,
        stored_mask=stored,
        const_outliers=c.outliers[~stored],
        const_lens=lens[~stored],
    )


def ensure_quantized_range(q: np.ndarray, context: str) -> np.ndarray:
    """Enforce the ``|q| < Q_LIMIT`` invariant on a combined quantized plane.

    Compressed-domain combines (``q_a ± q_b``) double the worst-case bin
    magnitude; without this gate a chain of combines could push bins past
    the guard band, where the *next* op's Lorenzo deltas wrap int64 and
    silently corrupt the stream.  Raises :class:`OperationError` naming
    ``context`` so the failing operation is diagnosable.
    """
    if q.size and int(np.abs(q).max()) >= int(Q_LIMIT):
        raise OperationError(
            f"{context} overflows the quantized integer range; "
            "use a larger error bound or smaller operands"
        )
    return q


def requantize(q: np.ndarray, factor: float) -> np.ndarray:
    """``round(q * factor)`` with an overflow guard on the int64 result.

    The guard must *raise*, never wrap: a silent int64 wraparound would
    produce a decodable stream representing garbage.  Three failure shapes
    are caught — a finite product at or beyond ``Q_LIMIT`` (2^62), a product
    that overflowed float64 to infinity, and a NaN from ``0 * inf`` — all
    reported as the documented :class:`OperationError`.
    """
    with np.errstate(over="ignore"):  # the guard below reports the overflow
        scaled = np.rint(np.asarray(q, dtype=np.float64) * factor)
    if scaled.size and (
        # isfinite runs first, so the >= comparison never sees NaN/inf.
        not np.all(np.isfinite(scaled))
        or np.abs(scaled).max() >= float(Q_LIMIT)  # szops: ignore[SZL003]
    ):
        raise OperationError(
            "scalar multiplication overflows the quantized integer range; "
            "use a larger error bound or a smaller scalar"
        )
    return scaled.astype(np.int64)


def rebuild_stored(
    c: SZOpsCompressed,
    blocks: StoredBlocks,
    q_stored: np.ndarray,
    const_outliers: np.ndarray,
) -> SZOpsCompressed:
    """Re-encode transformed quantized values into a new container.

    ``q_stored`` replaces the concatenated quantized values of the stored
    blocks of ``c`` (same ragged geometry as ``blocks.lens``);
    ``const_outliers`` replaces the constant blocks' outliers.  The Lorenzo
    operator is re-applied per stored block and the deltas re-encoded with
    blockwise fixed-length encoding; constant blocks never touch a payload.
    A stored block whose transformed deltas are all zero re-encodes at
    width 0, i.e. it *becomes* constant (exactly as eager scalar
    multiplication behaves).

    Shared by :func:`repro.core.ops.scalar_mul.scalar_multiply` and the lazy
    fusion runtime (:mod:`repro.runtime.lazy`) — one encode path is what
    makes fused and eager chains produce identical streams.
    """
    layout = c.layout
    stored = blocks.stored_mask
    new_outliers = np.empty(layout.n_blocks, dtype=np.int64)
    new_widths = np.zeros(layout.n_blocks, dtype=np.uint8)
    new_outliers[~stored] = const_outliers

    if q_stored.size:
        starts = exclusive_cumsum(blocks.lens)
        deltas = np.empty_like(q_stored)
        deltas[0] = 0
        np.subtract(q_stored[1:], q_stored[:-1], out=deltas[1:])
        deltas[starts] = 0
        new_outliers[stored] = q_stored[starts]
        signs = (deltas < 0).view(np.uint8)
        mags = np.abs(deltas).astype(np.uint64)
        stored_widths = block_widths(mags, blocks.lens)
        new_widths[stored] = stored_widths
        sign_bytes, payload_bytes = encode_block_sections(
            mags, signs, stored_widths, blocks.lens
        )
    else:
        sign_bytes = np.zeros(0, dtype=np.uint8)
        payload_bytes = np.zeros(0, dtype=np.uint8)

    return SZOpsCompressed(
        shape=c.shape,
        dtype=c.dtype,
        eps=c.eps,
        block_size=c.block_size,
        widths=new_widths,
        outliers=new_outliers,
        sign_bytes=sign_bytes,
        payload_bytes=payload_bytes,
    )
