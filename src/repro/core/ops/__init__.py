"""Compressed-domain scalar operations and reductions (Table II)."""

from repro.core.ops.dispatch import (
    CHAIN_REDUCTIONS,
    FUSABLE_OPERATIONS,
    OPERATIONS,
    OpSpec,
    apply_chain,
    apply_operation,
    normalize_chain,
    operation_names,
)
from repro.core.ops.negate import negate
from repro.core.ops.reductions import (
    block_means,
    maximum,
    mean,
    minimum,
    std,
    summary_statistics,
    value_range,
    variance,
)
from repro.core.ops.multivariate import (
    add,
    cosine_similarity,
    dot,
    l2_distance,
    subtract,
)
from repro.core.ops.scalar_add import scalar_add, scalar_subtract
from repro.core.ops.scalar_mul import scalar_multiply

__all__ = [
    "OPERATIONS",
    "FUSABLE_OPERATIONS",
    "CHAIN_REDUCTIONS",
    "OpSpec",
    "apply_operation",
    "apply_chain",
    "normalize_chain",
    "operation_names",
    "negate",
    "scalar_add",
    "scalar_subtract",
    "scalar_multiply",
    "mean",
    "variance",
    "std",
    "block_means",
    "summary_statistics",
    "add",
    "subtract",
    "dot",
    "l2_distance",
    "cosine_similarity",
    "minimum",
    "maximum",
    "value_range",
]
