"""Validation utilities asserting the compressor's central invariants.

These helpers are used by the test suite and by the benchmark harness's
self-checks; they raise :class:`~repro.core.errors.ErrorBoundViolation`
with a diagnostic payload when an invariant fails.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ErrorBoundViolation
from repro.core.format import SZOpsCompressed

__all__ = [
    "check_error_bound",
    "check_roundtrip",
    "max_abs_error",
    "psnr",
]


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Largest pointwise absolute difference, computed in float64."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.max(np.abs(a - b))) if a.size else 0.0


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (inf for an exact reconstruction)."""
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(reconstructed, dtype=np.float64)
    rng = float(a.max() - a.min()) if a.size else 0.0
    mse = float(np.mean((a - b) ** 2)) if a.size else 0.0
    if mse == 0.0:
        return float("inf")
    if rng == 0.0:
        return float("-inf")
    return 10.0 * np.log10(rng * rng / mse)


def check_error_bound(
    original: np.ndarray, reconstructed: np.ndarray, eps: float, slack: float = 0.0
) -> float:
    """Assert the pointwise error bound; returns the observed max error.

    ``slack`` admits a small float32 representation allowance when the
    reconstruction dtype is narrower than float64 (the quantization math is
    exact in float64; casting the representative ``2*eps*q`` to float32 can
    add up to half a float32 ulp of the value).
    """
    err = max_abs_error(original, reconstructed)
    limit = eps + slack
    if err > limit:
        raise ErrorBoundViolation(
            f"error bound violated: max |x - x_hat| = {err:.6e} > "
            f"eps + slack = {limit:.6e}"
        )
    return err


def _float_cast_slack(data: np.ndarray, eps: float) -> float:
    """Slack for floating-point representation of the reconstruction.

    Two effects: the float64 representative ``2*eps*q`` is rounded (half an
    ulp of the value), and float32 containers additionally cast it down
    (one float32 ulp).  See the note in :mod:`repro.core.quantize`.
    """
    arr = np.asarray(data)
    if arr.size == 0:
        return 0.0
    scale = float(np.max(np.abs(arr))) + eps
    slack = float(np.spacing(scale))
    if arr.dtype == np.float32:
        slack += float(np.spacing(np.float32(scale)))
    return slack


def check_roundtrip(codec, data: np.ndarray, error_bound: float, mode: str = "abs"):
    """Compress + decompress ``data`` and assert the bound; returns both.

    Works with any codec exposing ``compress(data, error_bound, mode)`` and
    ``decompress(c)`` — the SZOps core and every baseline conform.
    """
    c = codec.compress(data, error_bound, mode=mode)
    reconstructed = codec.decompress(c)
    eps = c.eps if isinstance(c, SZOpsCompressed) else getattr(c, "eps", error_bound)
    check_error_bound(data, reconstructed, eps, slack=_float_cast_slack(data, eps))
    return c, reconstructed
