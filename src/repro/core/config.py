"""Compressor configuration.

The paper's pipeline has two tunables: the user-specified error bound and
the block size of the 1-D Lorenzo / fixed-length-encoding stage (cuSZp uses
warp-sized 1-D blocks; the CPU SZp port in the paper keeps the same scheme).
We add the thread count of the CPU executor, mirroring the 12-thread OpenMP
configuration of the paper's test machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigError

__all__ = [
    "SZOpsConfig",
    "ErrorBoundMode",
    "resolve_error_bound",
    "VALID_BACKENDS",
    "VALID_BITPACK_KERNELS",
]

#: Execution-backend names accepted by ``SZOpsConfig.backend`` (the
#: constructible registry lives in :mod:`repro.parallel.backends`; the
#: tuple is duplicated here as a literal so the config layer stays free
#: of parallel-layer imports).
VALID_BACKENDS = ("serial", "threads", "processes")

#: Bitpack-kernel names accepted by ``SZOpsConfig.bitpack_kernel`` (the
#: constructible registry lives in :mod:`repro.bitstream.kernels`; same
#: literal-duplication rationale as ``VALID_BACKENDS``).  ``"auto"``
#: dispatches on width/size; ``"numba"`` falls back to ``"wordpack"``
#: when the optional dependency is missing.
VALID_BITPACK_KERNELS = ("auto", "bitarray", "wordpack", "numba")


#: Error-bound interpretation, matching SDRBench / SZ conventions:
#: ``"abs"`` — the bound is an absolute value tolerance;
#: ``"rel"`` — the bound is a fraction of the data's value range
#: (value-range-relative, the convention the paper's 1E-4 experiments use
#: for "relative error bound").
ErrorBoundMode = str

_VALID_MODES = ("abs", "rel")


def resolve_error_bound(
    error_bound: float, mode: ErrorBoundMode, value_range: float
) -> float:
    """Convert a (bound, mode) pair into an absolute error bound.

    ``value_range`` is ``max(data) - min(data)`` and is only consulted in
    ``"rel"`` mode.  A zero value range (constant data) degrades to the
    smallest positive bound that still quantizes the constant exactly; we use
    the absolute bound equal to the relative bound itself so the pipeline
    stays well-defined.
    """
    if error_bound <= 0:
        raise ConfigError(f"error bound must be positive, got {error_bound}")
    if mode == "abs":
        return float(error_bound)
    if mode == "rel":
        if value_range < 0:
            raise ConfigError("value range must be non-negative")
        if value_range == 0:
            return float(error_bound)
        return float(error_bound) * float(value_range)
    raise ConfigError(f"error-bound mode must be one of {_VALID_MODES}, got {mode!r}")


@dataclass(frozen=True)
class SZOpsConfig:
    """Static configuration of an :class:`~repro.core.compressor.SZOps` instance.

    Parameters
    ----------
    block_size:
        Elements per 1-D block over the C-order flattened array (default 64,
        matching the block geometry implied by the paper's Table VI counts).
        Must be a
        positive multiple of 8 so that per-block sign bitmaps and payload
        sections stay byte-aligned, which is what lets independently
        compressed chunks be concatenated by the thread-parallel executor.
    n_threads:
        Workers for the blockwise execution backend.  ``1`` runs inline
        regardless of the backend choice.
    backend:
        Execution substrate for the chunked hot paths: ``"serial"``
        (inline, same chunking), ``"threads"`` (GIL-sharing pool — wins
        while NumPy kernels dominate), or ``"processes"`` (warm worker
        pool with shared-memory zero-copy block transport — wins when the
        Python-level encode/decode group loops dominate).  All backends
        produce bit-identical streams; see ``docs/PARALLEL.md``.
    bitpack_kernel:
        Bitpack kernel variant for the BF stage: ``"auto"`` (dispatch on
        width/size), ``"bitarray"`` (per-bit reference), ``"wordpack"``
        (word-level shift-or), or ``"numba"`` (JIT, requires the
        ``[speed]`` extra; silently falls back to ``wordpack``).  All
        kernels produce bit-identical streams; see ``docs/KERNELS.md``.
    """

    block_size: int = 64
    n_threads: int = 1
    backend: str = "threads"
    bitpack_kernel: str = "auto"
    #: Reserved for forward compatibility; containers record it.
    format_version: int = field(default=1, repr=False)

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigError(f"block_size must be positive, got {self.block_size}")
        if self.block_size % 8:
            raise ConfigError(
                f"block_size must be a multiple of 8 for byte-aligned block "
                f"sections, got {self.block_size}"
            )
        if self.n_threads <= 0:
            raise ConfigError(f"n_threads must be positive, got {self.n_threads}")
        if self.backend not in VALID_BACKENDS:
            raise ConfigError(
                f"backend must be one of {VALID_BACKENDS}, got {self.backend!r}"
            )
        if self.bitpack_kernel not in VALID_BITPACK_KERNELS:
            raise ConfigError(
                f"bitpack_kernel must be one of {VALID_BITPACK_KERNELS}, "
                f"got {self.bitpack_kernel!r}"
            )
