"""Blockwise 1-D Lorenzo decorrelation (the LZ stage).

Formula (2) of the paper: within a block, each quantized value is replaced
by its difference from the previous element; the block's first quantized
value is extracted as the *outlier* and the delta slot it leaves behind is
zero.  Spatially smooth data therefore produces small-magnitude deltas,
which is what the fixed-length encoder exploits.

Both directions are fully vectorized: the forward pass is one subtraction
plus a scatter at block starts, and the inverse is a per-block cumulative
sum done with the full-block reshape trick (ragged tail handled separately).
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BlockLayout

__all__ = ["lorenzo_forward", "lorenzo_inverse"]


def lorenzo_forward(q: np.ndarray, layout: BlockLayout):
    """Apply the blockwise 1-D Lorenzo operator.

    Parameters
    ----------
    q : int64 array of quantization bins, shape ``(n_elements,)``.
    layout : block geometry.

    Returns
    -------
    deltas : int64 array, same shape; ``deltas[block_start] == 0``.
    outliers : int64 array of shape ``(n_blocks,)`` — each block's first bin.
    """
    if q.shape != (layout.n_elements,):
        raise ValueError("q must be 1-D and match the layout")
    q = np.ascontiguousarray(q, dtype=np.int64)
    deltas = np.empty_like(q)
    if q.size:
        deltas[0] = 0
        np.subtract(q[1:], q[:-1], out=deltas[1:])
    starts = layout.starts()
    outliers = q[starts] if q.size else np.zeros(0, dtype=np.int64)
    deltas[starts] = 0
    return deltas, outliers


def lorenzo_inverse(
    deltas: np.ndarray, outliers: np.ndarray, layout: BlockLayout
) -> np.ndarray:
    """Invert :func:`lorenzo_forward`: per-block prefix sum plus the outlier."""
    if deltas.shape != (layout.n_elements,):
        raise ValueError("deltas must be 1-D and match the layout")
    if outliers.shape != (layout.n_blocks,):
        raise ValueError("outliers must have one entry per block")
    deltas = np.ascontiguousarray(deltas, dtype=np.int64)
    q = np.empty_like(deltas)
    nf = layout.n_full_blocks
    B = layout.block_size
    if nf:
        body = deltas[: nf * B].reshape(nf, B)
        out_body = q[: nf * B].reshape(nf, B)
        np.cumsum(body, axis=1, out=out_body)
        # Reconstructs original quantized values (|q| < Q_LIMIT by the
        # quantizer's guard), so the prefix sum stays inside int64.
        out_body += outliers[:nf, None]  # szops: ignore[SZL101]
    tail = deltas[nf * B :]
    if tail.size:
        np.cumsum(tail, out=q[nf * B :])
        # Reconstructs original quantized values (|q| < Q_LIMIT by the
        # quantizer's guard), so the prefix sum stays inside int64.
        q[nf * B :] += outliers[-1]  # szops: ignore[SZL001, SZL101]
    return q
