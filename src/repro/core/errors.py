"""Exception hierarchy for the SZOps core."""

from __future__ import annotations

__all__ = [
    "SZOpsError",
    "ConfigError",
    "FormatError",
    "OperationError",
    "ErrorBoundViolation",
]


class SZOpsError(Exception):
    """Base class for all SZOps errors."""


class ConfigError(SZOpsError, ValueError):
    """Invalid compressor configuration (error bound, block size, threads)."""


class FormatError(SZOpsError, ValueError):
    """Malformed or incompatible compressed container."""


class OperationError(SZOpsError, ValueError):
    """A compressed-domain operation was invoked with invalid arguments."""


class ErrorBoundViolation(SZOpsError, AssertionError):
    """A validation check found data outside the guaranteed error bound.

    This should never fire for in-contract inputs; it exists so tests and the
    validation harness can assert the compressor's central invariant.
    """
