"""SZOps core: the error-bounded pipeline and compressed-domain operations."""

from repro.core.compressor import SZOps
from repro.core.config import SZOpsConfig, resolve_error_bound
from repro.core.errors import (
    ConfigError,
    ErrorBoundViolation,
    FormatError,
    OperationError,
    SZOpsError,
)
from repro.core.format import SZOpsCompressed

__all__ = [
    "SZOps",
    "SZOpsConfig",
    "SZOpsCompressed",
    "resolve_error_bound",
    "SZOpsError",
    "ConfigError",
    "FormatError",
    "OperationError",
    "ErrorBoundViolation",
]
