"""Error-controlled quantization (the QZ stage).

Formula (1) of the paper::

    q_i = floor((a_i + eps) / (2 * eps))

with reconstruction ``a'_i = 2 * eps * q_i``.  Writing
``a_i = 2*eps*q_i - eps + r`` with ``r in [0, 2*eps)`` gives
``a'_i - a_i = eps - r in (-eps, eps]``, i.e. the absolute error is bounded
by ``eps`` for every element — this is the compressor's central invariant
and is property-tested in ``tests/core/test_quantize.py``.

Floating-point caveat: the representative ``2*eps*q`` is itself a rounded
float64 product, so for an input sitting exactly on a bin boundary the
best representable reconstruction can overshoot the bound by half an ulp
of the value.  The practical contract is therefore
``|a' - a| <= eps + 0.5*ulp(|a| + eps)`` — the same contract the reference
SZ implementations provide.  A correction pass below removes the one other
float64 artifact (the division in Formula (1) occasionally picking the
wrong bin).

All arithmetic happens in float64 regardless of the input dtype so that
float32 inputs do not lose bound guarantees to intermediate rounding.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError

__all__ = [
    "Q_LIMIT",
    "quantize",
    "dequantize",
    "quantize_scalar",
    "dequantize_scalar",
]

#: Guard band for quantized magnitudes: every stored bin must satisfy
#: ``|q| < Q_LIMIT``, leaving headroom so a single compressed-domain
#: combine (``q_a ± q_b``, delta coding of adjacent bins) cannot wrap
#: int64.  Shared by the scalar ops and the dataflow lint rules.
Q_LIMIT = np.int64(1) << 62


def quantize(values: np.ndarray, eps: float) -> np.ndarray:
    """Quantize floats to integer bin numbers at absolute error bound ``eps``.

    Returns an int64 array of the same shape.  Non-finite inputs are
    rejected: NaN/Inf cannot be error-bounded and the reference compressors
    treat them as a pre-filtering concern.
    """
    if eps <= 0:
        raise ConfigError(f"error bound must be positive, got {eps}")
    v = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(v)):
        raise ValueError("input contains non-finite values; error-bounded "
                         "quantization requires finite data")
    scaled = np.floor((v + eps) / (2.0 * eps))
    # For tiny eps the bin ratio overflows float64 to ±inf even for finite
    # input; floor(±inf).astype(int64) is undefined garbage.  Reject before
    # the cast — mirroring quantize_scalar — so the int domain below only
    # ever sees bins inside the |q| < Q_LIMIT band.
    if scaled.size and (
        not np.all(np.isfinite(scaled))
        or np.abs(scaled).max() >= float(Q_LIMIT)
    ):
        raise ValueError(
            f"data at eps {eps!r} overflows the quantized integer range; "
            "increase the error bound"
        )
    q = scaled.astype(np.int64)
    # Formula (1) guarantees the bound in exact arithmetic; float64 rounding
    # of (v + eps) / (2 eps) can push an element one bin off by ~1 ulp of
    # its value.  One correction pass turns the bound into a hard guarantee.
    err = 2.0 * eps * q.astype(np.float64) - v
    half_ulp = 0.5 * np.spacing(np.abs(v) + eps)
    np.subtract(q, 1, out=q, where=err > eps + half_ulp)
    np.add(q, 1, out=q, where=err < -(eps + half_ulp))
    return q


def dequantize(bins: np.ndarray, eps: float, dtype=np.float64) -> np.ndarray:
    """Reconstruct representative values ``2 * eps * q`` from bin numbers."""
    if eps <= 0:
        raise ConfigError(f"error bound must be positive, got {eps}")
    q = np.asarray(bins)
    return (2.0 * eps * q.astype(np.float64)).astype(dtype)


def quantize_scalar(value: float, eps: float) -> int:
    """Quantize a single scalar; used for the compressed-domain scalar ops."""
    if eps <= 0:
        raise ConfigError(f"error bound must be positive, got {eps}")
    if not np.isfinite(value):
        raise ValueError(f"scalar operand must be finite, got {value}")
    ratio = np.floor((float(value) + eps) / (2.0 * eps))
    # For extreme scalar/eps combinations the bin ratio overflows float64;
    # int(inf) would raise a bare OverflowError deep in the op, so reject
    # here with a diagnosable message instead.
    if not np.isfinite(ratio):
        raise ValueError(
            f"scalar {value!r} at eps {eps!r} overflows the quantized "
            "integer range"
        )
    return int(ratio)


def dequantize_scalar(bin_index: int, eps: float) -> float:
    """Representative value of a scalar quantization bin."""
    return 2.0 * eps * float(bin_index)
