"""Block partitioning of the flattened array.

SZOps compresses the C-order flattened array in fixed-size 1-D blocks
(the paper's ``m' x n'`` 2-D blocking is the same thing after flattening,
because the Lorenzo operator inside a block is 1-D).  The last block may be
shorter ("ragged tail"); every kernel in :mod:`repro.core.encode` accepts
per-block lengths so no padding is ever introduced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockLayout", "segment_max", "segment_sum"]


@dataclass(frozen=True)
class BlockLayout:
    """Derived geometry of a blocked 1-D array."""

    n_elements: int
    block_size: int

    @property
    def n_blocks(self) -> int:
        return (self.n_elements + self.block_size - 1) // self.block_size

    @property
    def n_full_blocks(self) -> int:
        return self.n_elements // self.block_size

    @property
    def tail_length(self) -> int:
        """Length of the ragged final block (0 if the array tiles exactly)."""
        return self.n_elements - self.n_full_blocks * self.block_size

    def lengths(self) -> np.ndarray:
        """Per-block element counts, shape ``(n_blocks,)``."""
        lens = np.full(self.n_blocks, self.block_size, dtype=np.int64)
        if self.tail_length:
            lens[-1] = self.tail_length
        return lens

    def starts(self) -> np.ndarray:
        """Element index of each block's first element."""
        return np.arange(self.n_blocks, dtype=np.int64) * self.block_size

    def block_ids(self) -> np.ndarray:
        """Block index of every element, shape ``(n_elements,)``."""
        return np.arange(self.n_elements, dtype=np.int64) // self.block_size


def _split_tail(values: np.ndarray, layout: BlockLayout):
    """View the leading full blocks as a 2-D matrix plus the ragged tail."""
    nf = layout.n_full_blocks
    body = values[: nf * layout.block_size].reshape(nf, layout.block_size)
    tail = values[nf * layout.block_size :]
    return body, tail


def segment_max(values: np.ndarray, layout: BlockLayout) -> np.ndarray:
    """Per-block maximum, vectorized via the full-block reshape trick."""
    if values.shape != (layout.n_elements,):
        raise ValueError("values must be 1-D and match the layout")
    out = np.empty(layout.n_blocks, dtype=values.dtype)
    body, tail = _split_tail(values, layout)
    if body.size:
        np.max(body, axis=1, out=out[: layout.n_full_blocks])
    if tail.size:
        out[-1] = tail.max()
    return out


def segment_sum(values: np.ndarray, layout: BlockLayout, dtype=np.float64) -> np.ndarray:
    """Per-block sum (accumulated in ``dtype``, float64 by default)."""
    if values.shape != (layout.n_elements,):
        raise ValueError("values must be 1-D and match the layout")
    out = np.empty(layout.n_blocks, dtype=dtype)
    body, tail = _split_tail(values, layout)
    if body.size:
        np.sum(body, axis=1, dtype=dtype, out=out[: layout.n_full_blocks])
    elif layout.n_full_blocks:
        out[: layout.n_full_blocks] = 0
    if tail.size:
        out[-1] = tail.sum(dtype=dtype)
    return out
