"""The SZOps compressor: QZ -> LZ -> BF, and its inverse.

This is the CPU reimplementation of the paper's pipeline (Section IV): the
array is quantized against the user error bound, decorrelated with a
blockwise 1-D Lorenzo operator, split into sign bitmaps and magnitudes, and
the magnitudes are stored with blockwise fixed-length encoding.  Constant
blocks (all deltas zero) carry only a width byte and an outlier.

Thread parallelism follows the paper's multi-threaded CPU SZp port: blocks
are independent, so contiguous chunks of blocks are encoded/decoded by a
thread pool and their byte-aligned sections concatenated.  Alignment is
guaranteed because the block size is a multiple of 8 and only the globally
last block may be ragged (see :class:`repro.core.config.SZOpsConfig`).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.bitstream import exclusive_cumsum
from repro.core.blocks import BlockLayout
from repro.core.config import SZOpsConfig, resolve_error_bound
from repro.core.encode import (
    block_widths,
    decode_block_sections,
    encode_block_sections,
)
from repro.core.format import SZOpsCompressed
from repro.core.lorenzo import lorenzo_forward, lorenzo_inverse
from repro.core.quantize import dequantize, quantize

__all__ = ["SZOps"]


class SZOps:
    """Error-bounded lossy compressor with compressed-domain scalar ops.

    Parameters
    ----------
    block_size : elements per 1-D block (multiple of 8), default 64 (the
        geometry the paper's Table VI block counts imply).
    n_threads : worker threads for chunked encode/decode; 1 runs inline.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import SZOps
    >>> codec = SZOps()
    >>> data = np.cumsum(np.random.default_rng(0).normal(size=4096)).astype(np.float32)
    >>> c = codec.compress(data, error_bound=1e-3)
    >>> np.abs(codec.decompress(c) - data).max() <= 1e-3
    True
    """

    def __init__(
        self,
        block_size: int = 64,
        n_threads: int = 1,
        config: SZOpsConfig | None = None,
    ) -> None:
        self.config = config if config is not None else SZOpsConfig(
            block_size=block_size, n_threads=n_threads
        )
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------ helpers

    @property
    def block_size(self) -> int:
        return self.config.block_size

    @property
    def n_threads(self) -> int:
        return self.config.n_threads

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.config.n_threads)
        return self._pool

    def _chunk_ranges(self, n_blocks: int) -> list[tuple[int, int]]:
        """Contiguous block ranges, one per worker (all blocks covered)."""
        n = min(self.config.n_threads, max(n_blocks, 1))
        bounds = np.linspace(0, n_blocks, n + 1, dtype=np.int64)
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(n)
            if bounds[i + 1] > bounds[i]
        ]

    # ------------------------------------------------------------------ compress

    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: str = "abs",
    ) -> SZOpsCompressed:
        """Compress ``data`` under an absolute or value-range-relative bound."""
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            raise TypeError(f"SZOps compresses floating-point data, got {arr.dtype}")
        flat = np.ascontiguousarray(arr, dtype=arr.dtype).reshape(-1)
        if flat.size == 0:
            raise ValueError("cannot compress an empty array")
        value_range = float(flat.max() - flat.min()) if mode == "rel" else 0.0
        eps = resolve_error_bound(error_bound, mode, value_range)
        q = quantize(flat, eps)
        return self.encode_quantized(q, arr.shape, arr.dtype, eps)

    def encode_quantized(
        self,
        q: np.ndarray,
        shape: tuple[int, ...],
        dtype: np.dtype,
        eps: float,
    ) -> SZOpsCompressed:
        """Run LZ + BF on an already-quantized integer array.

        Exposed because scalar multiplication re-enters the pipeline at this
        stage (it never touches inverse quantization, Table II's note).
        """
        layout = BlockLayout(q.size, self.config.block_size)
        lens = layout.lengths()
        deltas, outliers = lorenzo_forward(q, layout)
        signs = (deltas < 0).view(np.uint8)
        mags = np.abs(deltas).astype(np.uint64)
        widths = block_widths(mags, lens)

        ranges = self._chunk_ranges(layout.n_blocks)
        if len(ranges) == 1:
            sign_bytes, payload_bytes = encode_block_sections(mags, signs, widths, lens)
        else:
            elem_bounds = [(lo * self.block_size, min(hi * self.block_size, q.size))
                           for lo, hi in ranges]
            futures = [
                self._executor().submit(
                    encode_block_sections,
                    mags[elo:ehi],
                    signs[elo:ehi],
                    widths[lo:hi],
                    lens[lo:hi],
                )
                for (lo, hi), (elo, ehi) in zip(ranges, elem_bounds)
            ]
            parts = [f.result() for f in futures]
            sign_bytes = np.concatenate([p[0] for p in parts])
            payload_bytes = np.concatenate([p[1] for p in parts])

        return SZOpsCompressed(
            shape=tuple(shape),
            dtype=np.dtype(dtype),
            eps=float(eps),
            block_size=self.config.block_size,
            widths=widths,
            outliers=outliers,
            sign_bytes=sign_bytes,
            payload_bytes=payload_bytes,
        )

    # ------------------------------------------------------------------ decompress

    def _section_offsets(self, c: SZOpsCompressed):
        """Per-block cumulative byte offsets into the sign/payload sections."""
        layout = c.layout
        lens = layout.lengths()
        stored = (c.widths > 0).astype(np.int64)
        sign_bits = exclusive_cumsum(lens * stored)
        payload_bits = exclusive_cumsum(c.widths.astype(np.int64) * lens)
        return lens, sign_bits, payload_bits

    def decode_deltas(self, c: SZOpsCompressed) -> np.ndarray:
        """Decode BF + signs back to the signed delta array (partial decode)."""
        layout = c.layout
        lens, sign_bit_off, payload_bit_off = self._section_offsets(c)
        ranges = self._chunk_ranges(layout.n_blocks)

        def total_bits(cum: np.ndarray, per_block_bits_last: int, hi: int) -> int:
            if hi < layout.n_blocks:
                return int(cum[hi])
            return int(per_block_bits_last)

        stored_lens = lens * (c.widths > 0)
        sign_total = int(stored_lens.sum())
        payload_total = int((c.widths.astype(np.int64) * lens).sum())

        if len(ranges) == 1:
            return decode_block_sections(c.sign_bytes, c.payload_bytes, c.widths, lens)

        def run(lo: int, hi: int) -> np.ndarray:
            s0 = int(sign_bit_off[lo]) // 8
            s1 = (total_bits(sign_bit_off, sign_total, hi) + 7) // 8
            p0 = int(payload_bit_off[lo]) // 8
            p1 = (total_bits(payload_bit_off, payload_total, hi) + 7) // 8
            return decode_block_sections(
                c.sign_bytes[s0:s1], c.payload_bytes[p0:p1], c.widths[lo:hi], lens[lo:hi]
            )

        futures = [self._executor().submit(run, lo, hi) for lo, hi in ranges]
        return np.concatenate([f.result() for f in futures])

    def decompress_quantized(self, c: SZOpsCompressed) -> np.ndarray:
        """Partial decompression: recover the quantized integers (no QZ^-1)."""
        c.validate_structure()
        deltas = self.decode_deltas(c)
        return lorenzo_inverse(deltas, c.outliers, c.layout)

    def decompress(self, c: SZOpsCompressed) -> np.ndarray:
        """Full decompression back to a floating-point array of ``c.shape``."""
        q = self.decompress_quantized(c)
        return dequantize(q, c.eps, c.dtype).reshape(c.shape)

    # ------------------------------------------------------------------ misc

    def close(self) -> None:
        """Shut down the worker pool (no-op when single-threaded)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SZOps":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SZOps(block_size={self.config.block_size}, "
            f"n_threads={self.config.n_threads})"
        )
