"""The SZOps compressor: QZ -> LZ -> BF, and its inverse.

This is the CPU reimplementation of the paper's pipeline (Section IV): the
array is quantized against the user error bound, decorrelated with a
blockwise 1-D Lorenzo operator, split into sign bitmaps and magnitudes, and
the magnitudes are stored with blockwise fixed-length encoding.  Constant
blocks (all deltas zero) carry only a width byte and an outlier.

Parallelism follows the paper's multi-threaded CPU SZp port, generalized to
a pluggable execution backend (:mod:`repro.parallel.backends`): blocks are
independent, so contiguous block-aligned chunks are encoded/decoded by the
configured substrate — inline (``serial``), a thread pool (``threads``), or
a warm process pool with shared-memory zero-copy transport
(``processes``) — and their byte-aligned sections written at precomputed
offsets.  Alignment is guaranteed because the block size is a multiple of 8
and only the globally last block may be ragged (see
:class:`repro.core.config.SZOpsConfig`).  Every backend produces
bit-identical streams.
"""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np

from repro.bitstream import exclusive_cumsum
from repro.core.blocks import BlockLayout
from repro.core.config import SZOpsConfig, resolve_error_bound
from repro.core.encode import (
    block_widths,
    decode_block_sections,
    encode_block_sections,
)
from repro.core.format import SZOpsCompressed
from repro.core.lorenzo import lorenzo_forward, lorenzo_inverse
from repro.core.quantize import dequantize, quantize
from repro.parallel import kernels
from repro.parallel.backends import ExecutionBackend, get_backend
from repro.parallel.partition import BlockChunk, block_chunks

__all__ = ["SZOps"]


class SZOps:
    """Error-bounded lossy compressor with compressed-domain scalar ops.

    Parameters
    ----------
    block_size : elements per 1-D block (multiple of 8), default 64 (the
        geometry the paper's Table VI block counts imply).
    n_threads : workers for chunked encode/decode; 1 runs inline.
    backend : execution substrate — a registered name (``"serial"`` /
        ``"threads"`` / ``"processes"``) or a ready
        :class:`~repro.parallel.backends.ExecutionBackend` instance (shared,
        not owned: :meth:`close` leaves it running).

    Examples
    --------
    >>> import numpy as np
    >>> from repro import SZOps
    >>> codec = SZOps()
    >>> data = np.cumsum(np.random.default_rng(0).normal(size=4096)).astype(np.float32)
    >>> c = codec.compress(data, error_bound=1e-3)
    >>> np.abs(codec.decompress(c) - data).max() <= 1e-3
    True
    """

    # Lock discipline (verified lexically by `repro.cli lint`'s lockcheck
    # pass, same as ChunkedExecutor): every mutation of these attributes
    # must hold self._lock.  A codec may be shared across threads — e.g.
    # several in-situ fields compressing concurrently — and an unguarded
    # lazy backend creation can build two pools and leak one.
    _GUARDED_ATTRS = ("_pool",)

    def __init__(
        self,
        block_size: int = 64,
        n_threads: int = 1,
        config: SZOpsConfig | None = None,
        backend: str | ExecutionBackend | None = None,
    ) -> None:
        if config is not None:
            self.config = config
        else:
            backend_name = backend if isinstance(backend, str) else None
            if isinstance(backend, ExecutionBackend):
                backend_name = backend.name
            self.config = SZOpsConfig(
                block_size=block_size,
                n_threads=n_threads,
                **({"backend": backend_name} if backend_name is not None else {}),
            )
        self._lock = threading.Lock()
        self._owns_pool = not isinstance(backend, ExecutionBackend)
        self._pool: ExecutionBackend | None = (
            backend if isinstance(backend, ExecutionBackend) else None
        )

    # ------------------------------------------------------------------ helpers

    @property
    def block_size(self) -> int:
        return self.config.block_size

    @property
    def n_threads(self) -> int:
        return self.config.n_threads

    @property
    def backend_name(self) -> str:
        """The configured execution-backend name."""
        return self._pool.name if self._pool is not None else self.config.backend

    def _ensure_backend(self) -> ExecutionBackend:
        with self._lock:
            if self._pool is None:
                self._pool = get_backend(self.config.backend, self.config.n_threads)
            return self._pool

    def _chunks(self, n_elements: int) -> list[BlockChunk]:
        """Block-aligned chunks, one per worker (all blocks covered)."""
        return block_chunks(n_elements, self.config.block_size, self.config.n_threads)

    # ------------------------------------------------------------------ compress

    def compress(
        self,
        data: np.ndarray,
        error_bound: float,
        mode: str = "abs",
        *,
        timings: dict[str, float] | None = None,
    ) -> SZOpsCompressed:
        """Compress ``data`` under an absolute or value-range-relative bound.

        ``timings``, when given, accumulates per-stage wall time under the
        keys ``"quantize_s"`` (QZ), ``"lorenzo_s"`` (LZ) and ``"encode_s"``
        (BF) — the Figure 5-style breakdown the parallel benchmark uses to
        attribute backend wins.
        """
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            raise TypeError(f"SZOps compresses floating-point data, got {arr.dtype}")
        flat = np.ascontiguousarray(arr, dtype=arr.dtype).reshape(-1)
        if flat.size == 0:
            raise ValueError("cannot compress an empty array")
        value_range = float(flat.max() - flat.min()) if mode == "rel" else 0.0
        eps = resolve_error_bound(error_bound, mode, value_range)
        t0 = perf_counter()
        q = quantize(flat, eps)
        if timings is not None:
            timings["quantize_s"] = timings.get("quantize_s", 0.0) + (
                perf_counter() - t0
            )
        return self.encode_quantized(q, arr.shape, arr.dtype, eps, timings=timings)

    def encode_quantized(
        self,
        q: np.ndarray,
        shape: tuple[int, ...],
        dtype: np.dtype,
        eps: float,
        *,
        timings: dict[str, float] | None = None,
    ) -> SZOpsCompressed:
        """Run LZ + BF on an already-quantized integer array.

        Exposed because scalar multiplication re-enters the pipeline at this
        stage (it never touches inverse quantization, Table II's note).
        """
        layout = BlockLayout(q.size, self.config.block_size)
        lens = layout.lengths()
        t0 = perf_counter()
        deltas, outliers = lorenzo_forward(q, layout)
        signs = (deltas < 0).view(np.uint8)
        mags_i = np.abs(deltas)
        widths = block_widths(mags_i.view(np.uint64), lens)
        if int(widths.max(initial=0)) <= 32:
            # Narrow magnitudes: every block width fits uint32, so the BF
            # stage gathers half the bytes and the wordpack kernel merges
            # in uint32 lanes end to end (same bit stream either way).
            mags = mags_i.astype(np.uint32)
        else:
            mags = mags_i.view(np.uint64)
        if timings is not None:
            timings["lorenzo_s"] = timings.get("lorenzo_s", 0.0) + (
                perf_counter() - t0
            )

        t0 = perf_counter()
        chunks = self._chunks(q.size)
        if len(chunks) == 1:
            sign_bytes, payload_bytes = encode_block_sections(
                mags, signs, widths, lens, kernel=self.config.bitpack_kernel
            )
        else:
            sign_bytes, payload_bytes = self._encode_chunked(
                mags, signs, widths, lens, chunks
            )
        if timings is not None:
            timings["encode_s"] = timings.get("encode_s", 0.0) + (
                perf_counter() - t0
            )

        return SZOpsCompressed(
            shape=tuple(shape),
            dtype=np.dtype(dtype),
            eps=float(eps),
            block_size=self.config.block_size,
            widths=widths,
            outliers=outliers,
            sign_bytes=sign_bytes,
            payload_bytes=payload_bytes,
        )

    def _encode_chunked(
        self,
        mags: np.ndarray,
        signs: np.ndarray,
        widths: np.ndarray,
        lens: np.ndarray,
        chunks: list[BlockChunk],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode block-aligned chunks through the execution backend.

        Per-chunk section byte offsets are derived from the width plane up
        front (chunk starts are block-aligned, so the bit offsets are whole
        bytes); every chunk kernel writes its sections straight into the
        preallocated output buffers — concatenation by construction, which
        is what keeps the stream bit-identical across backends and worker
        counts.
        """
        sign_bits = lens * (widths > 0)
        payload_bits = widths.astype(np.int64) * lens
        sign_bit_off = exclusive_cumsum(sign_bits)
        payload_bit_off = exclusive_cumsum(payload_bits)
        total_sign_bytes = (int(sign_bits.sum()) + 7) // 8
        total_payload_bytes = (int(payload_bits.sum()) + 7) // 8
        chunk_specs = [
            {
                "lo": c.block_lo,
                "hi": c.block_hi,
                "elem_lo": c.elem_lo,
                "elem_hi": c.elem_hi,
                "sign_off": int(sign_bit_off[c.block_lo]) // 8,
                "payload_off": int(payload_bit_off[c.block_lo]) // 8,
                "kernel": self.config.bitpack_kernel,
            }
            for c in chunks
        ]
        run = self._ensure_backend().run_kernel(
            kernels.encode_chunk,
            {"mags": mags, "signs": signs, "widths": widths, "lens": lens},
            chunk_specs,
            out_specs={
                "sign_out": ((total_sign_bytes,), np.uint8),
                "payload_out": ((total_payload_bytes,), np.uint8),
            },
        )
        return run.outputs["sign_out"], run.outputs["payload_out"]

    # ------------------------------------------------------------------ decompress

    def _section_offsets(
        self, c: SZOpsCompressed
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-block cumulative bit offsets into the sign/payload sections."""
        layout = c.layout
        lens = layout.lengths()
        stored = (c.widths > 0).astype(np.int64)
        sign_bits = exclusive_cumsum(lens * stored)
        payload_bits = exclusive_cumsum(c.widths.astype(np.int64) * lens)
        return lens, sign_bits, payload_bits

    def decode_deltas(self, c: SZOpsCompressed) -> np.ndarray:
        """Decode BF + signs back to the signed delta array (partial decode)."""
        layout = c.layout
        lens, sign_bit_off, payload_bit_off = self._section_offsets(c)
        chunks = self._chunks(layout.n_elements)
        if len(chunks) == 1:
            return decode_block_sections(
                c.sign_bytes,
                c.payload_bytes,
                c.widths,
                lens,
                kernel=self.config.bitpack_kernel,
            )

        stored_lens = lens * (c.widths > 0)
        sign_total = int(stored_lens.sum())
        payload_total = int((c.widths.astype(np.int64) * lens).sum())

        def end_bits(cum: np.ndarray, total: int, hi: int) -> int:
            return int(cum[hi]) if hi < layout.n_blocks else total

        chunk_specs = [
            {
                "lo": ch.block_lo,
                "hi": ch.block_hi,
                "elem_lo": ch.elem_lo,
                "elem_hi": ch.elem_hi,
                "sign_b0": int(sign_bit_off[ch.block_lo]) // 8,
                "sign_b1": (end_bits(sign_bit_off, sign_total, ch.block_hi) + 7) // 8,
                "payload_b0": int(payload_bit_off[ch.block_lo]) // 8,
                "payload_b1": (
                    end_bits(payload_bit_off, payload_total, ch.block_hi) + 7
                ) // 8,
                "kernel": self.config.bitpack_kernel,
            }
            for ch in chunks
        ]
        run = self._ensure_backend().run_kernel(
            kernels.decode_chunk,
            {
                "sign_bytes": c.sign_bytes,
                "payload_bytes": c.payload_bytes,
                "widths": c.widths,
                "lens": lens,
            },
            chunk_specs,
            out_specs={"deltas_out": ((layout.n_elements,), np.int64)},
        )
        return run.outputs["deltas_out"]

    def decompress_quantized(self, c: SZOpsCompressed) -> np.ndarray:
        """Partial decompression: recover the quantized integers (no QZ^-1)."""
        c.validate_structure()
        deltas = self.decode_deltas(c)
        return lorenzo_inverse(deltas, c.outliers, c.layout)

    def decompress(self, c: SZOpsCompressed) -> np.ndarray:
        """Full decompression back to a floating-point array of ``c.shape``."""
        q = self.decompress_quantized(c)
        return dequantize(q, c.eps, c.dtype).reshape(c.shape)

    # ------------------------------------------------------------------ misc

    def close(self) -> None:
        """Shut down an owned backend pool (no-op for shared backends)."""
        if not self._owns_pool:
            return
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "SZOps":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SZOps(block_size={self.config.block_size}, "
            f"n_threads={self.config.n_threads}, "
            f"backend={self.backend_name!r})"
        )
