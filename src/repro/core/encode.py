"""Blockwise fixed-length encoding (the BF stage).

Each stored block records every delta magnitude at the same bit width — the
width of the block's largest magnitude.  A width of zero marks a *constant
block* (all deltas zero); constant blocks store no sign bitmap and no
payload, which is the optimization behind the reduction speedups of
Table V / Table VI of the paper.

The kernels operate on an arbitrary *selection* of blocks described by
ragged per-block lengths, so the same code serves:

* the compressor (all non-constant blocks of the array),
* scalar multiplication (only the non-constant blocks are decoded,
  multiplied, and re-encoded — constant blocks are transformed in O(1)),
* the thread-parallel executor (contiguous chunks of blocks),
* the SZp / SZx / ZFP-class baselines (with their own alignments).

Vectorization strategy: blocks are sorted by (width, length) — at most a
few dozen distinct pairs — and each group's payload is packed or unpacked
with whole-byte ``packbits``/``unpackbits`` calls plus a byte-granular
scatter/gather.  This *byte fast path* applies whenever every non-final
block's (aligned) payload is a whole number of bytes, which all in-tree
formats guarantee by construction (block sizes are multiples of 8, or the
stream is byte/word aligned).  A bit-granular fallback covers arbitrary
geometries.

``align_bits`` rounds every block's payload up to a multiple of that many
bits.  SZOps always uses 1 (tight packing); SZp passes its 32-bit word
alignment, reproducing the format overhead the paper cites as SZp's
compression-efficiency limitation.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream import (
    bit_width,
    bits_of,
    exclusive_cumsum,
    pack_bits,
    ragged_arange,
    uints_from_bits,
    unpack_bits,
)

__all__ = [
    "block_widths",
    "payload_bit_counts",
    "encode_signs",
    "decode_signs",
    "encode_magnitudes",
    "decode_magnitudes",
    "encode_block_sections",
    "decode_block_sections",
    "decode_stored_deltas",
]


def block_widths(mags: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Per-block fixed bit width: the bit length of the block's max magnitude.

    ``mags`` is the concatenation of the blocks' delta magnitudes and
    ``lens`` gives each block's element count.
    """
    lens = np.asarray(lens, dtype=np.int64)
    n_blocks = lens.size
    widths = np.zeros(n_blocks, dtype=np.uint8)
    if mags.size == 0:
        return widths
    # Per-block max via reduceat (handles ragged lengths in one call).
    starts = exclusive_cumsum(lens)
    nonempty = lens > 0
    if np.all(nonempty):
        maxima = np.maximum.reduceat(mags, starts)
    else:
        maxima = np.zeros(n_blocks, dtype=mags.dtype)
        maxima[nonempty] = np.maximum.reduceat(mags, starts[nonempty])[
            : int(nonempty.sum())
        ]
    widths[:] = bit_width(maxima)
    return widths


def payload_bit_counts(
    widths: np.ndarray, lens: np.ndarray, align_bits: int = 1
) -> np.ndarray:
    """Bits of payload each block contributes (``width * length``, aligned)."""
    bits = np.asarray(widths, dtype=np.int64) * np.asarray(lens, dtype=np.int64)
    if align_bits > 1:
        bits = -(-bits // align_bits) * align_bits
    return bits


def encode_signs(signs: np.ndarray) -> np.ndarray:
    """Pack a per-element sign array (1 = negative) into a byte buffer."""
    return pack_bits(np.asarray(signs, dtype=np.uint8))


def decode_signs(sign_bytes: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack the leading ``n_bits`` sign bits from a byte buffer."""
    return unpack_bits(sign_bytes, n_bits)


# --------------------------------------------------------------------------
# group-sorted byte fast path
# --------------------------------------------------------------------------


def _grouped_blocks(widths: np.ndarray, lens: np.ndarray):
    """Stable-sort blocks by (width, length) and expose contiguous groups.

    Returns (order, perm_elems, group_bounds) where ``perm_elems`` maps the
    sorted element stream back to positions in the original concatenated
    element stream, and ``group_bounds`` delimits equal-(width, length) runs
    of ``order``.
    """
    key = widths * (int(lens.max(initial=0)) + 1) + lens
    order = np.argsort(key, kind="stable")
    elem_starts = exclusive_cumsum(lens)
    perm_elems = ragged_arange(lens[order], elem_starts[order])
    sorted_key = key[order]
    bounds = np.flatnonzero(np.diff(sorted_key)) + 1
    group_bounds = np.concatenate(([0], bounds, [order.size]))
    return order, perm_elems, group_bounds


def _byte_path_ok(block_bits: np.ndarray) -> bool:
    """True when every non-final block's payload is whole bytes."""
    if block_bits.size <= 1:
        return True
    return bool((block_bits[:-1] % 8 == 0).all())


def encode_magnitudes(
    mags: np.ndarray, widths: np.ndarray, lens: np.ndarray, align_bits: int = 1
) -> tuple[np.ndarray, int]:
    """Pack block delta magnitudes at per-block fixed widths.

    Parameters
    ----------
    mags : concatenated non-negative magnitudes of the selected blocks.
    widths : per-block bit widths (zero-width blocks contribute nothing and
        must have all-zero magnitudes).
    lens : per-block element counts.
    align_bits : round each block's payload up to this many bits.

    Returns
    -------
    (payload_bytes, total_bits): the packed byte buffer and the number of
    stream bits in it (the final byte may carry zero padding).
    """
    widths64 = np.asarray(widths, dtype=np.int64)
    lens64 = np.asarray(lens, dtype=np.int64)
    block_bits = payload_bit_counts(widths64, lens64, align_bits)
    total_bits = int(block_bits.sum())
    if widths64.size == 0 or total_bits == 0:
        return np.zeros(0, dtype=np.uint8), total_bits
    if not _byte_path_ok(block_bits):
        return _encode_magnitudes_bits(mags, widths64, lens64, block_bits)

    offsets = exclusive_cumsum(block_bits)
    out = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    order, perm_elems, bounds = _grouped_blocks(widths64, lens64)
    vals_sorted = np.asarray(mags, dtype=np.uint64)[perm_elems]
    epos = 0
    for g in range(bounds.size - 1):
        g0, g1 = int(bounds[g]), int(bounds[g + 1])
        bsel = order[g0:g1]
        w = int(widths64[bsel[0]])
        blen = int(lens64[bsel[0]])
        nblk = g1 - g0
        n_e = nblk * blen
        vals = vals_sorted[epos : epos + n_e]
        epos += n_e
        if w == 0 or n_e == 0:
            continue
        row_bits = blen * w
        row_bytes = (row_bits + 7) // 8
        bits = bits_of(vals, w).reshape(nblk, row_bits)
        if row_bits % 8:
            padded = np.zeros((nblk, row_bytes * 8), dtype=np.uint8)
            padded[:, :row_bits] = bits
            bits = padded
        # Flat packbits (rows are whole bytes after padding) — much faster
        # than packbits(axis=1).
        packed = np.packbits(np.ascontiguousarray(bits).reshape(-1)).reshape(
            nblk, row_bytes
        )
        idx = offsets[bsel] // 8
        idx = (idx[:, None] + np.arange(row_bytes, dtype=np.int64)[None, :]).reshape(-1)
        out[idx] = packed.reshape(-1)
    return out, total_bits


def decode_magnitudes(
    payload_bytes: np.ndarray, widths: np.ndarray, lens: np.ndarray, align_bits: int = 1
) -> np.ndarray:
    """Inverse of :func:`encode_magnitudes`.

    Returns the concatenated magnitudes (uint64) of the selected blocks,
    with zero-width blocks expanded to zeros.
    """
    widths64 = np.asarray(widths, dtype=np.int64)
    lens64 = np.asarray(lens, dtype=np.int64)
    block_bits = payload_bit_counts(widths64, lens64, align_bits)
    n_elems = int(lens64.sum())
    out = np.zeros(n_elems, dtype=np.uint64)
    total_bits = int(block_bits.sum())
    if total_bits == 0:
        return out
    if not _byte_path_ok(block_bits):
        return _decode_magnitudes_bits(payload_bytes, widths64, lens64, block_bits)

    buf = (
        np.frombuffer(payload_bytes, dtype=np.uint8)
        if isinstance(payload_bytes, (bytes, bytearray, memoryview))
        else np.asarray(payload_bytes, dtype=np.uint8)
    )
    if buf.size < (total_bits + 7) // 8:
        raise ValueError(
            f"payload of {buf.size} bytes shorter than the width plane "
            f"implies ({(total_bits + 7) // 8} bytes)"
        )
    offsets = exclusive_cumsum(block_bits)
    order, perm_elems, bounds = _grouped_blocks(widths64, lens64)
    epos = 0
    for g in range(bounds.size - 1):
        g0, g1 = int(bounds[g]), int(bounds[g + 1])
        bsel = order[g0:g1]
        w = int(widths64[bsel[0]])
        blen = int(lens64[bsel[0]])
        nblk = g1 - g0
        n_e = nblk * blen
        dst = perm_elems[epos : epos + n_e]
        epos += n_e
        if w == 0 or n_e == 0:
            continue
        row_bits = blen * w
        row_bytes = (row_bits + 7) // 8
        idx = offsets[bsel] // 8
        idx = (idx[:, None] + np.arange(row_bytes, dtype=np.int64)[None, :]).reshape(-1)
        rows = buf[idx]
        bits = np.unpackbits(rows).reshape(nblk, row_bytes * 8)[:, :row_bits]
        out[dst] = uints_from_bits(np.ascontiguousarray(bits).reshape(-1), w)
    return out


# --------------------------------------------------------------------------
# bit-granular fallback (arbitrary geometries)
# --------------------------------------------------------------------------


def _element_geometry(widths: np.ndarray, lens: np.ndarray, block_bits: np.ndarray):
    """Per-element width and starting bit offset for the selected blocks."""
    block_off = exclusive_cumsum(block_bits)
    elem_block = np.repeat(np.arange(lens.size, dtype=np.int64), lens)
    elem_pos = ragged_arange(lens)
    elem_w = widths[elem_block]
    elem_off = block_off[elem_block] + elem_pos * elem_w
    return elem_w, elem_off


def _encode_magnitudes_bits(
    mags: np.ndarray, widths: np.ndarray, lens: np.ndarray, block_bits: np.ndarray
) -> tuple[np.ndarray, int]:
    elem_w, elem_off = _element_geometry(widths, lens, block_bits)
    total_bits = int(block_bits.sum())
    bits = np.zeros(total_bits, dtype=np.uint8)
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = elem_w == w
        vals = np.asarray(mags)[sel]
        if vals.size == 0:
            continue
        group_bits = bits_of(vals, w).reshape(vals.size, w)
        idx = (elem_off[sel][:, None] + np.arange(w, dtype=np.int64)[None, :]).ravel()
        bits[idx] = group_bits.ravel()
    return pack_bits(bits), total_bits


def _decode_magnitudes_bits(
    payload_bytes: np.ndarray,
    widths: np.ndarray,
    lens: np.ndarray,
    block_bits: np.ndarray,
) -> np.ndarray:
    elem_w, elem_off = _element_geometry(widths, lens, block_bits)
    total_bits = int(block_bits.sum())
    out = np.zeros(elem_w.size, dtype=np.uint64)
    bits = unpack_bits(payload_bytes, total_bits)
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = elem_w == w
        if not sel.any():
            continue
        idx = (elem_off[sel][:, None] + np.arange(w, dtype=np.int64)[None, :]).ravel()
        out[sel] = uints_from_bits(bits[idx], w)
    return out


# --------------------------------------------------------------------------
# combined sign + payload sections
# --------------------------------------------------------------------------


def encode_block_sections(
    mags: np.ndarray, signs: np.ndarray, widths: np.ndarray, lens: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Encode the sign + payload sections for a contiguous run of blocks.

    ``mags``/``signs`` cover *all* elements of the run; constant blocks
    (width 0) are filtered out here because their bits are implicit in the
    stream format.
    """
    stored = widths > 0
    if stored.all():
        elem_mask: slice | np.ndarray = slice(None)
        stored_widths, stored_lens = widths, lens
    else:
        elem_mask = np.repeat(stored, lens)
        stored_widths, stored_lens = widths[stored], lens[stored]
    sign_bytes = encode_signs(np.asarray(signs, dtype=np.uint8)[elem_mask])
    payload_bytes, _ = encode_magnitudes(
        np.asarray(mags)[elem_mask], stored_widths, stored_lens
    )
    return sign_bytes, payload_bytes


def decode_block_sections(
    sign_bytes: np.ndarray,
    payload_bytes: np.ndarray,
    widths: np.ndarray,
    lens: np.ndarray,
) -> np.ndarray:
    """Decode a run of blocks back to signed deltas (constant blocks -> 0)."""
    stored = widths > 0
    n_elems = int(np.asarray(lens, dtype=np.int64).sum())
    deltas = np.zeros(n_elems, dtype=np.int64)
    if not stored.any():
        return deltas
    stored_lens = np.asarray(lens, dtype=np.int64)[stored]
    n_stored_elems = int(stored_lens.sum())
    signs = decode_signs(sign_bytes, n_stored_elems)
    mags = decode_magnitudes(payload_bytes, widths[stored], stored_lens).astype(
        np.int64
    )
    signed = np.where(signs.astype(bool), -mags, mags)
    if stored.all():
        deltas[:] = signed
    else:
        deltas[np.repeat(stored, lens)] = signed
    return deltas


def decode_stored_deltas(
    sign_bytes: np.ndarray,
    payload_bytes: np.ndarray,
    stored_widths: np.ndarray,
    stored_lens: np.ndarray,
) -> np.ndarray:
    """Decode only the stored (non-constant) blocks, leaving them compacted.

    Unlike :func:`decode_block_sections` this never materializes the
    constant blocks, which is what lets scalar multiplication and the
    reductions honour the paper's "excluding constant block computations"
    optimization (Table V).
    """
    stored_lens = np.asarray(stored_lens, dtype=np.int64)
    n_stored_elems = int(stored_lens.sum())
    if n_stored_elems == 0:
        return np.zeros(0, dtype=np.int64)
    signs = decode_signs(sign_bytes, n_stored_elems)
    mags = decode_magnitudes(payload_bytes, stored_widths, stored_lens).astype(
        np.int64
    )
    return np.where(signs.astype(bool), -mags, mags)
