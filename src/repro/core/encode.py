"""Blockwise fixed-length encoding (the BF stage).

Each stored block records every delta magnitude at the same bit width — the
width of the block's largest magnitude.  A width of zero marks a *constant
block* (all deltas zero); constant blocks store no sign bitmap and no
payload, which is the optimization behind the reduction speedups of
Table V / Table VI of the paper.

The kernels operate on an arbitrary *selection* of blocks described by
ragged per-block lengths, so the same code serves:

* the compressor (all non-constant blocks of the array),
* scalar multiplication (only the non-constant blocks are decoded,
  multiplied, and re-encoded — constant blocks are transformed in O(1)),
* the thread-parallel executor (contiguous chunks of blocks),
* the SZp / SZx / ZFP-class baselines (with their own alignments).

Vectorization strategy: blocks are sorted by (width, length) — at most a
few dozen distinct pairs — and each group's payload is packed or unpacked
with whole-byte ``packbits``/``unpackbits`` calls plus a byte-granular
scatter/gather.  This *byte fast path* applies whenever every non-final
block's (aligned) payload is a whole number of bytes, which all in-tree
formats guarantee by construction (block sizes are multiples of 8, or the
stream is byte/word aligned).  A bit-granular fallback covers arbitrary
geometries.

``align_bits`` rounds every block's payload up to a multiple of that many
bits.  SZOps always uses 1 (tight packing); SZp passes its 32-bit word
alignment, reproducing the format overhead the paper cites as SZp's
compression-efficiency limitation.
"""

from __future__ import annotations

import numpy as np

from repro.bitstream import (
    AUTO_KERNEL,
    BitpackKernel,
    bit_width,
    exclusive_cumsum,
    pack_bits,
    ragged_arange,
    resolve_kernel,
    unpack_bits,
)

__all__ = [
    "block_widths",
    "payload_bit_counts",
    "encode_signs",
    "decode_signs",
    "apply_signs",
    "encode_magnitudes",
    "decode_magnitudes",
    "encode_block_sections",
    "decode_block_sections",
    "decode_stored_deltas",
]


def block_widths(mags: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Per-block fixed bit width: the bit length of the block's max magnitude.

    ``mags`` is the concatenation of the blocks' delta magnitudes and
    ``lens`` gives each block's element count.
    """
    lens = np.asarray(lens, dtype=np.int64)
    n_blocks = lens.size
    widths = np.zeros(n_blocks, dtype=np.uint8)
    if mags.size == 0:
        return widths
    # Per-block max via reduceat (handles ragged lengths in one call).
    starts = exclusive_cumsum(lens)
    nonempty = lens > 0
    if np.all(nonempty):
        maxima = np.maximum.reduceat(mags, starts)
    else:
        maxima = np.zeros(n_blocks, dtype=mags.dtype)
        maxima[nonempty] = np.maximum.reduceat(mags, starts[nonempty])[
            : int(nonempty.sum())
        ]
    widths[:] = bit_width(maxima)
    return widths


def payload_bit_counts(
    widths: np.ndarray, lens: np.ndarray, align_bits: int = 1
) -> np.ndarray:
    """Bits of payload each block contributes (``width * length``, aligned)."""
    bits = np.asarray(widths, dtype=np.int64) * np.asarray(lens, dtype=np.int64)
    if align_bits > 1:
        bits = -(-bits // align_bits) * align_bits
    return bits


def encode_signs(signs: np.ndarray) -> np.ndarray:
    """Pack a per-element sign array (1 = negative) into a byte buffer."""
    return pack_bits(np.asarray(signs, dtype=np.uint8))


def decode_signs(sign_bytes: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack the leading ``n_bits`` sign bits from a byte buffer."""
    return unpack_bits(sign_bytes, n_bits)


def apply_signs(signs: np.ndarray, mags: np.ndarray) -> np.ndarray:
    """Signed int64 deltas from sign bits and uint64 magnitudes.

    Negation stays in uint64, where wraparound is defined modular
    arithmetic, and the result is bit-reinterpreted: a magnitude of
    exactly ``2**63`` round-trips to INT64_MIN instead of hitting
    signed-negation overflow.
    """
    return np.where(signs.astype(bool), -mags, mags).view(np.int64)


# --------------------------------------------------------------------------
# group-sorted byte fast path
# --------------------------------------------------------------------------


def _grouped_blocks(widths: np.ndarray, lens: np.ndarray):
    """Stable-sort blocks by (width, length) and expose contiguous groups.

    Returns (order, group_bounds) where ``group_bounds`` delimits
    equal-(width, length) runs of ``order``.  Every block inside a group
    shares one width *and one length*, which is what lets the callers
    gather/scatter whole rows instead of building a per-element
    permutation of the concatenated stream (the former ``ragged_arange``
    path cost more than the packing itself on megascale inputs).
    """
    max_len = int(lens.max(initial=0))
    key = widths * (max_len + 1) + lens
    if 64 * (max_len + 1) + max_len <= np.iinfo(np.uint16).max:
        # Narrow keys sort ~3x faster and cover every in-tree geometry
        # (widths <= 64; block sizes far below 1000).
        key = key.astype(np.uint16)
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    bounds = np.flatnonzero(np.diff(sorted_key)) + 1
    group_bounds = np.concatenate(([0], bounds, [order.size]))
    return order, group_bounds


def _group_element_index(
    elem_starts: np.ndarray, bsel: np.ndarray, blen: int
) -> np.ndarray:
    """Element indices of a group's blocks (each ``blen`` long) in the stream."""
    return (
        elem_starts[bsel][:, None] + np.arange(blen, dtype=np.int64)[None, :]
    ).reshape(-1)


def _row_byte_index(byte_starts: np.ndarray, row_bytes: int) -> np.ndarray:
    """Byte indices of per-block payload rows; int32 keeps the scatter cheap."""
    if byte_starts.size and int(byte_starts.max()) + row_bytes < 2**31:
        return (
            byte_starts.astype(np.int32)[:, None]
            + np.arange(row_bytes, dtype=np.int32)[None, :]
        ).reshape(-1)
    return (
        byte_starts[:, None] + np.arange(row_bytes, dtype=np.int64)[None, :]
    ).reshape(-1)


def _as_unsigned_magnitudes(mags: np.ndarray) -> np.ndarray:
    """Contiguous unsigned view of the magnitudes, copy-free where possible.

    ``uint32`` magnitudes (the compressor's narrow representation when every
    block width fits 32 bits) pass through untouched — the kernels accept
    them natively and the halved element size halves the group gathers.
    Signed 64-bit input reinterprets as ``uint64`` (magnitudes are
    non-negative by contract); anything else converts.
    """
    arr = np.ascontiguousarray(mags)
    if arr.dtype == np.uint32 or arr.dtype == np.uint64:
        return arr
    if arr.dtype == np.int64:
        return arr.view(np.uint64)
    return arr.astype(np.uint64)


def _byte_path_ok(block_bits: np.ndarray) -> bool:
    """True when every non-final block's payload is whole bytes."""
    if block_bits.size <= 1:
        return True
    return bool((block_bits[:-1] % 8 == 0).all())


def encode_magnitudes(
    mags: np.ndarray,
    widths: np.ndarray,
    lens: np.ndarray,
    align_bits: int = 1,
    kernel: str | BitpackKernel = AUTO_KERNEL,
) -> tuple[np.ndarray, int]:
    """Pack block delta magnitudes at per-block fixed widths.

    Parameters
    ----------
    mags : concatenated non-negative magnitudes of the selected blocks.
    widths : per-block bit widths (zero-width blocks contribute nothing and
        must have all-zero magnitudes).
    lens : per-block element counts.
    align_bits : round each block's payload up to this many bits.
    kernel : bitpack kernel variant (name or instance) for the per-group
        packing; all variants produce bit-identical streams.

    Returns
    -------
    (payload_bytes, total_bits): the packed byte buffer and the number of
    stream bits in it (the final byte may carry zero padding).
    """
    widths64 = np.asarray(widths, dtype=np.int64)
    lens64 = np.asarray(lens, dtype=np.int64)
    block_bits = payload_bit_counts(widths64, lens64, align_bits)
    total_bits = int(block_bits.sum())
    if widths64.size == 0 or total_bits == 0:
        return np.zeros(0, dtype=np.uint8), total_bits
    kern = resolve_kernel(kernel, size=int(lens64.sum()))
    if not _byte_path_ok(block_bits):
        return _encode_magnitudes_bits(mags, widths64, lens64, block_bits, kern)

    offsets = exclusive_cumsum(block_bits)
    total_bytes = (total_bits + 7) // 8
    # Word-padded allocation so whole-word payload rows (the common
    # block-size-multiple-of-8 geometry) scatter as uint64 lanes.
    out_words = np.zeros((total_bytes + 7) // 8, dtype=np.uint64)
    out = out_words.view(np.uint8)[:total_bytes]
    order, bounds = _grouped_blocks(widths64, lens64)
    mags_arr = _as_unsigned_magnitudes(mags)
    uniform = int(lens64.min()) == int(lens64.max())
    mags_rows = mags_arr.reshape(lens64.size, -1) if uniform else None
    elem_starts = None if uniform else exclusive_cumsum(lens64)
    for g in range(bounds.size - 1):
        g0, g1 = int(bounds[g]), int(bounds[g + 1])
        bsel = order[g0:g1]
        w = int(widths64[bsel[0]])
        blen = int(lens64[bsel[0]])
        nblk = g1 - g0
        n_e = nblk * blen
        if w == 0 or n_e == 0:
            continue
        # Whole rows: blocks of one group share (width, length), so the
        # group's elements gather as rows — a reshaped row take when every
        # block has the same length, a broadcast index otherwise.
        if mags_rows is not None:
            vals = mags_rows[bsel].reshape(-1)
        else:
            vals = mags_arr[_group_element_index(elem_starts, bsel, blen)]
        row_bits = blen * w
        row_bytes = (row_bits + 7) // 8
        if row_bits % 8 == 0 or nblk == 1:
            # Rows are whole bytes (or there is a single ragged row, whose
            # kernel output is already zero-padded to whole bytes): the
            # group packs as one contiguous kernel call.
            packed = kern.pack_uints(vals, w)
        else:
            # Ragged rows under align_bits > 1: pad each row's bit image to
            # whole bytes before packing.
            bits = kern.bits_of(vals, w).reshape(nblk, row_bits)
            padded = np.zeros((nblk, row_bytes * 8), dtype=np.uint8)
            padded[:, :row_bits] = bits
            packed = pack_bits(np.ascontiguousarray(padded).reshape(-1))
        off_bytes = offsets[bsel] >> 3
        flat = packed.reshape(-1)
        if row_bytes % 8 == 0 and not (off_bytes & 7).any():
            out_words[_row_byte_index(off_bytes >> 3, row_bytes >> 3)] = flat.view(
                np.uint64
            )
        else:
            out[_row_byte_index(off_bytes, row_bytes)] = flat
    return out, total_bits


def decode_magnitudes(
    payload_bytes: np.ndarray,
    widths: np.ndarray,
    lens: np.ndarray,
    align_bits: int = 1,
    kernel: str | BitpackKernel = AUTO_KERNEL,
) -> np.ndarray:
    """Inverse of :func:`encode_magnitudes`.

    Returns the concatenated magnitudes (uint64) of the selected blocks,
    with zero-width blocks expanded to zeros.
    """
    widths64 = np.asarray(widths, dtype=np.int64)
    lens64 = np.asarray(lens, dtype=np.int64)
    block_bits = payload_bit_counts(widths64, lens64, align_bits)
    n_elems = int(lens64.sum())
    out = np.zeros(n_elems, dtype=np.uint64)
    total_bits = int(block_bits.sum())
    if total_bits == 0:
        return out
    kern = resolve_kernel(kernel, size=n_elems)
    if not _byte_path_ok(block_bits):
        return _decode_magnitudes_bits(payload_bytes, widths64, lens64, block_bits, kern)

    buf = (
        np.frombuffer(payload_bytes, dtype=np.uint8)
        if isinstance(payload_bytes, (bytes, bytearray, memoryview))
        else np.asarray(payload_bytes, dtype=np.uint8)
    )
    if buf.size < (total_bits + 7) // 8:
        raise ValueError(
            f"payload of {buf.size} bytes shorter than the width plane "
            f"implies ({(total_bits + 7) // 8} bytes)"
        )
    offsets = exclusive_cumsum(block_bits)
    # Whole-word row gather mirror of the encode-side scatter; only usable
    # when the buffer splits into uint64 lanes exactly.
    buf_words = (
        buf.view(np.uint64)
        if buf.size % 8 == 0 and buf.flags.c_contiguous
        else None
    )
    order, bounds = _grouped_blocks(widths64, lens64)
    uniform = int(lens64.min()) == int(lens64.max())
    out_rows = out.reshape(lens64.size, -1) if uniform else None
    elem_starts = None if uniform else exclusive_cumsum(lens64)
    for g in range(bounds.size - 1):
        g0, g1 = int(bounds[g]), int(bounds[g + 1])
        bsel = order[g0:g1]
        w = int(widths64[bsel[0]])
        blen = int(lens64[bsel[0]])
        nblk = g1 - g0
        n_e = nblk * blen
        if w == 0 or n_e == 0:
            continue
        row_bits = blen * w
        row_bytes = (row_bits + 7) // 8
        off_bytes = offsets[bsel] >> 3
        if buf_words is not None and row_bytes % 8 == 0 and not (off_bytes & 7).any():
            rows = buf_words[_row_byte_index(off_bytes >> 3, row_bytes >> 3)].view(
                np.uint8
            )
        else:
            rows = buf[_row_byte_index(off_bytes, row_bytes)]
        if row_bits % 8 == 0 or nblk == 1:
            vals = kern.unpack_uints(rows, n_e, w)
        else:
            bits = np.unpackbits(rows).reshape(nblk, row_bytes * 8)[:, :row_bits]
            vals = kern.uints_from_bits(np.ascontiguousarray(bits).reshape(-1), w)
        # Mirror of the encode-side row gather: scatter whole rows back.
        if out_rows is not None:
            out_rows[bsel] = vals.reshape(nblk, blen)
        else:
            out[_group_element_index(elem_starts, bsel, blen)] = vals
    return out


# --------------------------------------------------------------------------
# bit-granular fallback (arbitrary geometries)
# --------------------------------------------------------------------------


def _element_geometry(widths: np.ndarray, lens: np.ndarray, block_bits: np.ndarray):
    """Per-element width and starting bit offset for the selected blocks."""
    block_off = exclusive_cumsum(block_bits)
    elem_block = np.repeat(np.arange(lens.size, dtype=np.int64), lens)
    elem_pos = ragged_arange(lens)
    elem_w = widths[elem_block]
    elem_off = block_off[elem_block] + elem_pos * elem_w
    return elem_w, elem_off


def _encode_magnitudes_bits(
    mags: np.ndarray,
    widths: np.ndarray,
    lens: np.ndarray,
    block_bits: np.ndarray,
    kern: BitpackKernel,
) -> tuple[np.ndarray, int]:
    elem_w, elem_off = _element_geometry(widths, lens, block_bits)
    total_bits = int(block_bits.sum())
    bits = np.zeros(total_bits, dtype=np.uint8)
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = elem_w == w
        vals = np.asarray(mags)[sel]
        if vals.size == 0:
            continue
        group_bits = kern.bits_of(vals, w).reshape(vals.size, w)
        idx = (elem_off[sel][:, None] + np.arange(w, dtype=np.int64)[None, :]).ravel()
        bits[idx] = group_bits.ravel()
    return pack_bits(bits), total_bits


def _decode_magnitudes_bits(
    payload_bytes: np.ndarray,
    widths: np.ndarray,
    lens: np.ndarray,
    block_bits: np.ndarray,
    kern: BitpackKernel,
) -> np.ndarray:
    elem_w, elem_off = _element_geometry(widths, lens, block_bits)
    total_bits = int(block_bits.sum())
    out = np.zeros(elem_w.size, dtype=np.uint64)
    bits = unpack_bits(payload_bytes, total_bits)
    for w in np.unique(widths):
        w = int(w)
        if w == 0:
            continue
        sel = elem_w == w
        if not sel.any():
            continue
        idx = (elem_off[sel][:, None] + np.arange(w, dtype=np.int64)[None, :]).ravel()
        out[sel] = kern.uints_from_bits(bits[idx], w)
    return out


# --------------------------------------------------------------------------
# combined sign + payload sections
# --------------------------------------------------------------------------


def encode_block_sections(
    mags: np.ndarray,
    signs: np.ndarray,
    widths: np.ndarray,
    lens: np.ndarray,
    kernel: str | BitpackKernel = AUTO_KERNEL,
) -> tuple[np.ndarray, np.ndarray]:
    """Encode the sign + payload sections for a contiguous run of blocks.

    ``mags``/``signs`` cover *all* elements of the run; constant blocks
    (width 0) are filtered out here because their bits are implicit in the
    stream format.
    """
    stored = widths > 0
    lens64 = np.asarray(lens, dtype=np.int64)
    if stored.all():
        stored_signs: np.ndarray = np.asarray(signs, dtype=np.uint8)
    else:
        uniform = (
            lens64.size > 0
            and int(lens64[0]) > 0
            and int(lens64.min()) == int(lens64.max())
        )
        if uniform:
            # All blocks share one length: drop constant blocks with a row
            # take instead of a per-element boolean mask.
            stored_signs = (
                np.ascontiguousarray(signs, dtype=np.uint8)
                .reshape(lens64.size, -1)[stored]
                .reshape(-1)
            )
        else:
            stored_signs = np.asarray(signs, dtype=np.uint8)[np.repeat(stored, lens64)]
    sign_bytes = encode_signs(stored_signs)
    # The magnitudes need no such filtering: zero-width blocks contribute
    # zero payload bits, so packing the full selection yields the identical
    # stream without materializing a compacted copy of ``mags``.
    payload_bytes, _ = encode_magnitudes(mags, widths, lens64, kernel=kernel)
    return sign_bytes, payload_bytes


def decode_block_sections(
    sign_bytes: np.ndarray,
    payload_bytes: np.ndarray,
    widths: np.ndarray,
    lens: np.ndarray,
    kernel: str | BitpackKernel = AUTO_KERNEL,
) -> np.ndarray:
    """Decode a run of blocks back to signed deltas (constant blocks -> 0)."""
    stored = widths > 0
    n_elems = int(np.asarray(lens, dtype=np.int64).sum())
    deltas = np.zeros(n_elems, dtype=np.int64)
    if not stored.any():
        return deltas
    stored_lens = np.asarray(lens, dtype=np.int64)[stored]
    n_stored_elems = int(stored_lens.sum())
    signs = decode_signs(sign_bytes, n_stored_elems)
    mags = decode_magnitudes(
        payload_bytes, widths[stored], stored_lens, kernel=kernel
    )
    signed = apply_signs(signs, mags)
    if stored.all():
        deltas[:] = signed
    else:
        lens64 = np.asarray(lens, dtype=np.int64)
        uniform = (
            lens64.size > 0
            and int(lens64[0]) > 0
            and int(lens64.min()) == int(lens64.max())
        )
        if uniform:
            blen = int(lens64[0])
            deltas.reshape(lens64.size, blen)[stored] = signed.reshape(-1, blen)
        else:
            deltas[np.repeat(stored, lens64)] = signed
    return deltas


def decode_stored_deltas(
    sign_bytes: np.ndarray,
    payload_bytes: np.ndarray,
    stored_widths: np.ndarray,
    stored_lens: np.ndarray,
    kernel: str | BitpackKernel = AUTO_KERNEL,
) -> np.ndarray:
    """Decode only the stored (non-constant) blocks, leaving them compacted.

    Unlike :func:`decode_block_sections` this never materializes the
    constant blocks, which is what lets scalar multiplication and the
    reductions honour the paper's "excluding constant block computations"
    optimization (Table V).
    """
    stored_lens = np.asarray(stored_lens, dtype=np.int64)
    n_stored_elems = int(stored_lens.sum())
    if n_stored_elems == 0:
        return np.zeros(0, dtype=np.int64)
    signs = decode_signs(sign_bytes, n_stored_elems)
    mags = decode_magnitudes(
        payload_bytes, stored_widths, stored_lens, kernel=kernel
    )
    return apply_signs(signs, mags)
