"""Structured findings shared by all three analysis passes.

Every pass — the AST linter, the lock-discipline checker, and the stream
verifier — reports the same record shape: a rule id, a location, a
severity, a one-line message, and a fix hint.  Keeping the shape uniform
lets the CLI merge passes into one report and lets CI gate on a single
JSON document.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass, field


class Severity(str, enum.Enum):
    """Finding severity; only ``ERROR`` findings fail the lint gate."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One analysis finding.

    Attributes
    ----------
    rule : rule id (``SZL001``–``SZL006`` lint, ``LCK001`` lockcheck,
        ``VS0xx`` stream verification).
    path : file the finding is anchored to (source file or stream file).
    line : 1-based line number; 0 when the finding has no line anchor
        (stream verification findings are byte-offset anchored instead).
    message : one-line statement of the defect.
    hint : suggested fix.
    severity : :class:`Severity`; errors gate, warnings inform.
    offset : byte offset into a verified stream, or ``None`` for source
        findings.
    """

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""
    severity: Severity = Severity.ERROR
    offset: int | None = None

    def location(self) -> str:
        if self.offset is not None:
            return f"{self.path}@byte {self.offset}"
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        text = f"{self.location()}: {self.rule} {self.severity.value}: {self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def to_dict(self) -> dict[str, object]:
        data = asdict(self)
        data["severity"] = self.severity.value
        return data


@dataclass
class Report:
    """A collection of findings from one or more passes."""

    findings: list[Finding] = field(default_factory=list)

    def extend(self, more: list[Finding]) -> None:
        self.findings.extend(more)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: path, then line/offset, then rule id."""
    return sorted(
        findings,
        key=lambda f: (f.path, f.line, -1 if f.offset is None else f.offset, f.rule),
    )


def render_text(findings: list[Finding]) -> str:
    """Human-readable report, one finding per line plus a summary."""
    lines = [f.render() for f in sort_findings(findings)]
    n_err = sum(1 for f in findings if f.severity is Severity.ERROR)
    n_warn = len(findings) - n_err
    lines.append(
        "clean: no findings"
        if not findings
        else f"{n_err} error(s), {n_warn} warning(s)"
    )
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable report (the format CI gates on)."""
    ordered = sort_findings(findings)
    doc = {
        "findings": [f.to_dict() for f in ordered],
        "counts": Report(ordered).counts(),
        "errors": sum(1 for f in ordered if f.severity is Severity.ERROR),
        "warnings": sum(1 for f in ordered if f.severity is Severity.WARNING),
    }
    return json.dumps(doc, indent=2)


#: Per-family anchors into the rule tables of ``docs/ANALYSIS.md``;
#: rendered as relative ``helpUri``s on each SARIF rule descriptor so
#: code-scanning UIs link findings straight to the pass documentation.
#: Fragments are GitHub heading slugs — ``test_async_taint.py`` recomputes
#: them from the document so they cannot drift silently.
_ANALYSIS_DOC = "docs/ANALYSIS.md"
_FAMILY_ANCHORS: dict[str, str] = {
    "lint": "pass-1--szops-lint-rules-szl000szl006",
    "verify": "pass-2--verify-stream-rules-vs001vs008",
    "lockcheck": "pass-3--lockcheck-rule-lck001",
    "dataflow": "pass-4--dataflow-rules-szl099-szl101szl103-lck002-shm001002",
    "async": "pass-5--async-safety--untrusted-input-asy001asy005-tnt001002",
    "npa": "pass-6--numpy-array-semantics-npa001npa006",
}
#: Dataflow-upgrade SZL ids documented in pass 4, not the syntactic pass 1.
_DATAFLOW_SZL = frozenset({"SZL099", "SZL101", "SZL102", "SZL103"})


def rule_help_uri(rule: str) -> str | None:
    """Relative documentation URI for ``rule``, or ``None`` if undocumented."""
    if rule in _DATAFLOW_SZL or rule in {"LCK002"} or rule.startswith("SHM"):
        family = "dataflow"
    elif rule.startswith("SZL"):
        family = "lint"
    elif rule.startswith("VS"):
        family = "verify"
    elif rule.startswith("LCK"):
        family = "lockcheck"
    elif rule.startswith(("ASY", "TNT")):
        family = "async"
    elif rule.startswith("NPA"):
        family = "npa"
    else:
        return None
    return f"{_ANALYSIS_DOC}#{_FAMILY_ANCHORS[family]}"


def render_sarif(findings: list[Finding], *, tool_name: str = "szops-lint") -> str:
    """SARIF 2.1.0 report, for code-scanning UIs and CI artifact upload.

    Minimal-but-valid subset: one run, one rule descriptor per distinct
    rule id, one result per finding.  Stream findings (byte-offset
    anchored, line 0) are emitted with ``byteOffset`` regions; source
    findings with line regions.  Hints ride along as the fix description
    so they stay visible in viewers that only show the result message.
    Each rule descriptor carries a ``helpUri`` into the matching rule
    table of ``docs/ANALYSIS.md``.
    """
    ordered = sort_findings(findings)
    rules: list[dict[str, object]] = []
    rule_index: dict[str, int] = {}
    for f in ordered:
        if f.rule not in rule_index:
            rule_index[f.rule] = len(rules)
            desc: dict[str, object] = {"id": f.rule}
            help_uri = rule_help_uri(f.rule)
            if help_uri is not None:
                desc["helpUri"] = help_uri
            rules.append(desc)
    results = []
    for f in ordered:
        message = f.message if not f.hint else f"{f.message} [hint: {f.hint}]"
        location: dict[str, object] = {
            "physicalLocation": {
                "artifactLocation": {"uri": f.path},
                "region": (
                    {"byteOffset": f.offset}
                    if f.offset is not None
                    else {"startLine": max(f.line, 1)}
                ),
            }
        }
        results.append(
            {
                "ruleId": f.rule,
                "ruleIndex": rule_index[f.rule],
                "level": f.severity.value,
                "message": {"text": message},
                "locations": [location],
            }
        )
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {"driver": {"name": tool_name, "rules": rules}},
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)
