"""ASY001–ASY005: async-safety verification for the event-loop service.

The service layer (``repro.service``) runs one asyncio event loop whose
correctness claims — guarded-store atomicity, no blocking work on the
loop, bounded request latency — are exactly the properties a thread
checker cannot see: every ``await`` is an interleaving point where any
other coroutine (and, through ``run_in_executor`` hand-offs, any pool
thread) may run.  This pass family rides the abstract interpreter's
async CFG (``on_await`` fires at ``await`` expressions, ``async with``
enter/exit and each ``async for`` step) and reports:

``ASY001`` (await-point atomicity)
    a read-modify-write of a guarded attribute (one listed in the
    class's ``_GUARDED_ATTRS`` declaration) that straddles an await
    without a recognized lock held: the value read before the await may
    be stale by the time it is written back.  The async analog of
    LCK001's unguarded-mutation rule.
``ASY002`` (lock held across an await)
    a *synchronous* lock (``threading.Lock`` / the store's
    writer-preferring ``RWLock``) acquired on the event loop and held
    over an await.  Every other coroutine needing that lock then blocks
    the loop itself — a starvation/deadlock class LCK002's ordering
    graph cannot see.  ``async with`` on an asyncio lock is exempt:
    holding one across awaits is its purpose.
``ASY003`` (blocking call on the event-loop thread)
    ``time.sleep``, a direct ``run_kernel``, pool/backend teardown,
    file or socket I/O reachable from an ``async def`` without a
    ``run_in_executor``/``to_thread`` hand-off.  One level of local
    synchronous callees is scanned; nested ``def`` closures handed to
    executors are exempt by construction.
``ASY004`` (dropped coroutine / task handle)
    a coroutine that is never awaited, or an ``ensure_future`` /
    ``create_task`` handle that is neither awaited, stored, cancelled,
    gathered nor given a done-callback — fire-and-forget tasks whose
    exceptions vanish.  Tracked through ``State.res`` exactly like
    SHM002 tracks segment handles.
``ASY005`` (missing deadline propagation)
    inside an async function that demonstrates deadline intent (it
    contains an ``asyncio.wait_for``), an await that can block
    unboundedly (``drain``, ``readexactly``, ``recv``, a lock
    ``acquire``, or a local async callee that does) *outside* any
    ``wait_for``.  Functions with no ``wait_for`` at all are not roots:
    an accept loop that intentionally waits forever is not a finding.

Soundness caveats: the interleaving model is per-function (cross-module
method calls are opaque), ``_GUARDED_ATTRS`` declarations are the ASY001
contract, lock-likeness is recognized by constructor and by name, and
ASY005's unbounded-await set is a curated list — see docs/ANALYSIS.md.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping, Optional, Union

from repro.analysis.dataflow.engine import (
    FuncInfo,
    Interpreter,
    ModuleContext,
    State,
    _WithFrame,
    analyze_module,
    path_of,
    terminal_name,
)
from repro.analysis.dataflow.lattice import Value
from repro.analysis.findings import Finding

__all__ = ["asyncsafety_findings", "AsyncSafetyPass"]

_TASK = ("task",)
_CORO = ("coro",)

_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "RWLock", "Condition", "Semaphore", "BoundedSemaphore"}
)
_TASK_FACTORIES = frozenset({"create_task", "ensure_future"})
#: Calling one of these on a tracked handle retires the obligation:
#: a done-callback observes the exception, cancel() suppresses it.
_TASK_RETIRE_METHS = frozenset({"add_done_callback", "cancel", "result", "exception"})

#: Direct call paths that block the calling thread.
_BLOCKING_PATHS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "open",
        "input",
    }
)
#: Method names that block regardless of receiver (domain: kernels).
_BLOCKING_METHS = frozenset({"run_kernel"})
#: (receiver constructor, method) pairs that block.
_BLOCKING_CTOR_METHS = frozenset(
    {
        ("ThreadPoolExecutor", "shutdown"),
        ("ProcessPoolExecutor", "shutdown"),
        ("ExecutionBackend", "close"),
        ("Thread", "join"),
        ("Process", "join"),
        ("socket", "recv"),
        ("socket", "send"),
        ("socket", "sendall"),
        ("socket", "connect"),
        ("socket", "accept"),
    }
)

#: Awaited methods with no intrinsic bound (ASY005): a peer that stops
#: reading stalls ``drain`` forever, a silent peer stalls ``readexactly``.
#: ``wait_closed``/``serve_forever`` are deliberately absent (their
#: unboundedness is the intended semantics), as are executor hand-offs
#: (``run_in_executor``/``to_thread`` — deadline coverage for offloaded
#: work is the dispatcher's wait_for, not the hand-off's).
_UNBOUNDED_AWAIT_METHS = frozenset(
    {"drain", "readexactly", "readuntil", "readline", "read", "recv", "acquire"}
)


def _name_lockish(name: str) -> bool:
    n = name.lower()
    return "lock" in n or n in ("mutex", "cond", "condition", "sem", "semaphore")


def _iter_own_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack: list[ast.AST] = list(getattr(fn_node, "body", []))
    while stack:
        n = stack.pop()
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield n
        stack.extend(ast.iter_child_nodes(n))


def _guarded_attrs(cls: ast.ClassDef) -> frozenset[str]:
    """The ``_GUARDED_ATTRS = ("_a", "_b")`` declaration of a class."""
    for item in cls.body:
        if (
            isinstance(item, ast.Assign)
            and len(item.targets) == 1
            and isinstance(item.targets[0], ast.Name)
            and item.targets[0].id == "_GUARDED_ATTRS"
            and isinstance(item.value, (ast.Tuple, ast.List, ast.Set))
        ):
            return frozenset(
                e.value
                for e in item.value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            )
    return frozenset()


class AsyncSafetyPass(Interpreter):
    """ASY001–ASY004 (the path-sensitive rules; ASY005 is lexical)."""

    CTOR_NAMES = _LOCK_CTORS | frozenset(
        {"ThreadPoolExecutor", "ProcessPoolExecutor", "Thread", "Process"}
    )

    def __init__(
        self,
        ctx: ModuleContext,
        summaries: Optional[Mapping[str, Value]] = None,
        source_path: str = "<module>",
    ) -> None:
        super().__init__(ctx, summaries, source_path=source_path)
        self._guarded: dict[str, frozenset[str]] = {
            name: _guarded_attrs(node) for name, node in ctx.classes.items()
        }
        self._cur_guarded: frozenset[str] = frozenset()
        self._epoch = 0
        self._stmt_epoch = 0
        #: guarded attr → epoch of its most recent ``self.<attr>`` read
        self._gread: dict[str, int] = {}
        #: local path → (guarded attr, read epoch) pairs it derives from
        self._gdep: dict[str, list[tuple[str, int]]] = {}
        #: sync locks currently acquired via explicit ``.acquire*()``
        self._sync_locks: set[str] = set()
        #: items whose context manager is lock-like (filled on enter)
        self._lockish_items: dict[int, bool] = {}
        self._task_line: dict[str, int] = {}
        self._reported: set[tuple[str, str, str]] = set()

    # ------------------------------------------------------------------ runs

    def run(self, fn: FuncInfo, params: Optional[Mapping[str, Value]] = None):  # type: ignore[no-untyped-def]
        self._epoch = 0
        self._stmt_epoch = 0
        self._gread = {}
        self._gdep = {}
        self._sync_locks = set()
        self._cur_guarded = (
            self._guarded.get(fn.class_name, frozenset())
            if fn.class_name
            else frozenset()
        )
        return super().run(fn, params)

    def _report_once(
        self, kind: str, rule: str, node: ast.AST, path: str, message: str, hint: str
    ) -> None:
        key = (kind, rule, path)
        if key in self._reported:
            return
        self._reported.add(key)
        self.report(rule, node, message, hint=hint)

    # ------------------------------------------------------------ await points

    def on_await(self, node: ast.AST, value: Optional[Value], state: State) -> None:
        held = self._sync_locks_held()
        if held:
            self._report_once(
                "lock-await",
                "ASY002",
                node,
                held,
                f"synchronous lock `{held}` is held across an await on the "
                "event loop: any coroutine contending for it blocks the "
                "whole loop until this one resumes",
                "release the lock before awaiting, move the guarded work "
                "onto the pool, or switch to an asyncio lock",
            )
        self._epoch += 1
        # awaiting a tracked task/coroutine retires the obligation
        if isinstance(node, ast.Await):
            p = path_of(node.value)
            if p is not None and p in state.res:
                del state.res[p]
                self._task_line.pop(p, None)

    def _sync_locks_held(self) -> Optional[str]:
        for fr in self.frames:
            if isinstance(fr, _WithFrame) and not fr.is_async:
                for item in fr.node.items:
                    if self._lockish_items.get(id(item)):
                        p = (
                            path_of(item.context_expr)
                            if not isinstance(item.context_expr, ast.Call)
                            else path_of(item.context_expr.func)
                        )
                        return p or "<lock>"
        if self._sync_locks:
            return sorted(self._sync_locks)[0]
        return None

    def _any_lock_held(self) -> bool:
        if self._sync_locks:
            return True
        for fr in self.frames:
            if isinstance(fr, _WithFrame) and any(
                self._lockish_items.get(id(item)) for item in fr.node.items
            ):
                return True
        return False

    def on_with_enter(
        self, item: ast.withitem, value: Value, path: Optional[str], state: State
    ) -> None:
        lockish = value.ctor in _LOCK_CTORS
        e = item.context_expr
        if not lockish:
            if isinstance(e, ast.Call):
                f = e.func
                if isinstance(f, ast.Attribute):
                    base = path_of(f.value)
                    lockish = _name_lockish(f.attr) or bool(
                        base and _name_lockish(terminal_name(base))
                    )
                elif isinstance(f, ast.Name):
                    lockish = _name_lockish(f.id)
            else:
                p = path_of(e)
                lockish = bool(p and _name_lockish(terminal_name(p)))
        self._lockish_items[id(item)] = lockish

    # ------------------------------------------------------------------ ASY001

    def on_attr_load(self, base_path: str, attr: str, node: ast.AST, state: State) -> None:
        if base_path == "self" and attr in self._cur_guarded:
            self._gread[attr] = self._epoch

    def on_possible_raise(self, stmt: ast.stmt, state: State) -> None:
        self._stmt_epoch = self._epoch

    def on_assign(self, path: str, value: Value, node: ast.AST, state: State) -> None:
        self._asy004_on_assign(path, value, node, state)
        deps = self._value_deps(node)
        self._gdep.pop(path, None)
        if path.startswith("self.") and path[len("self.") :] in self._cur_guarded:
            attr = path[len("self.") :]
            stale: Optional[int] = None
            if isinstance(node, ast.AugAssign):
                if self._stmt_epoch < self._epoch:
                    stale = self._stmt_epoch
            for dep_attr, epoch in deps:
                if dep_attr == attr and epoch < self._epoch:
                    stale = epoch
            if stale is not None and not self._any_lock_held():
                self._report_once(
                    "rmw",
                    "ASY001",
                    node,
                    path,
                    f"read-modify-write of guarded attribute `{path}` "
                    "straddles an await without the store lock held: the "
                    "value read before the await may be stale when written "
                    "back, silently losing a concurrent update",
                    "hold the store's lock (or an asyncio lock) across the "
                    "whole read-modify-write, or re-read after the await",
                )
            self._gread.pop(attr, None)
        elif deps:
            self._gdep[path] = deps

    def _value_deps(self, node: ast.AST) -> list[tuple[str, int]]:
        """Guarded-attr dependencies of the assigned expression."""
        value = getattr(node, "value", None)
        if not isinstance(value, ast.AST):
            return []
        deps: list[tuple[str, int]] = []
        for sub in ast.walk(value):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
                and sub.attr in self._cur_guarded
            ):
                deps.append((sub.attr, self._gread.get(sub.attr, self._epoch)))
            elif isinstance(sub, ast.Name) and sub.id in self._gdep:
                deps.extend(self._gdep[sub.id])
        return deps

    # ------------------------------------------------------------ ASY003/ASY004

    def exec_stmt(self, stmt: ast.stmt, state: State) -> State:
        # a bare Call statement discards a freshly created coro/task;
        # `await task` (an Await expression) retires it instead
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            v = self.eval(stmt.value, state)
            if v.origin == _CORO:
                self.report(
                    "ASY004",
                    stmt,
                    "coroutine is created but never awaited: its body never "
                    "runs and any exception it would raise vanishes",
                    hint="await it, or hand it to create_task/gather and "
                    "keep the handle",
                )
            elif v.origin == _TASK:
                self.report(
                    "ASY004",
                    stmt,
                    "fire-and-forget task: the handle is dropped immediately, "
                    "so the task's exception is never retrieved",
                    hint="store the handle and await it (or add a "
                    "done-callback that observes the exception)",
                )
            return state
        return super().exec_stmt(stmt, state)

    def on_call(
        self,
        node: ast.Call,
        func_path: Optional[str],
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Optional[Value]:
        in_async = self.current is not None and self.current.is_async
        meth = ""
        recv_path: Optional[str] = None
        if isinstance(node.func, ast.Attribute):
            meth = node.func.attr
            recv_path = path_of(node.func.value)

        # ---- ASY002: explicit sync acquire/release tracking -----------
        # (an *awaited* acquire is an asyncio lock — that one is fine)
        if recv_path is not None and meth.startswith(("acquire", "release")):
            rv = state.env.get(recv_path)
            lockish = _name_lockish(terminal_name(recv_path)) or (
                rv is not None and rv.ctor in _LOCK_CTORS
            )
            if lockish:
                if meth.startswith("acquire"):
                    if id(node) not in self._awaited_calls:
                        self._sync_locks.add(recv_path)
                else:
                    self._sync_locks.discard(recv_path)

        # ---- ASY004: retire / escape bookkeeping ----------------------
        if recv_path is not None and recv_path in state.res and meth in _TASK_RETIRE_METHS:
            del state.res[recv_path]
            self._task_line.pop(recv_path, None)
        for arg in list(node.args) + [k.value for k in node.keywords]:
            p = path_of(arg)
            if p is not None and p in state.res:
                # gather()/wait()/shield()/container.add() take over the
                # handle; stop tracking rather than guess
                del state.res[p]
                self._task_line.pop(p, None)

        # ---- ASY003: blocking work on the event-loop thread -----------
        if in_async:
            self._check_blocking(node, func_path, meth, recv_path, state)

        # ---- ASY004: creation -----------------------------------------
        awaited = id(node) in self._awaited_calls
        if not awaited:
            if meth in _TASK_FACTORIES or func_path in _TASK_FACTORIES:
                return Value.obj(ctor="Task", origin=_TASK)
            if meth == "run_in_executor" and recv_path is not None:
                return Value.obj(ctor="Future", origin=_TASK)
            callee = self._resolve_callee(node, func_path, meth, recv_path)
            if callee is not None and callee.is_async:
                return Value.obj(origin=_CORO)
        return None

    def _resolve_callee(
        self,
        node: ast.Call,
        func_path: Optional[str],
        meth: str,
        recv_path: Optional[str],
    ) -> Optional[FuncInfo]:
        if func_path is not None and "." not in func_path:
            return self.ctx.functions.get(func_path)
        if (
            recv_path == "self"
            and self.current is not None
            and self.current.class_name
        ):
            return self.ctx.functions.get(f"{self.current.class_name}.{meth}")
        return None

    def _check_blocking(
        self,
        node: ast.Call,
        func_path: Optional[str],
        meth: str,
        recv_path: Optional[str],
        state: State,
    ) -> None:
        fn_name = self.current.node.name if self.current is not None else "?"
        why: Optional[str] = None
        if func_path in _BLOCKING_PATHS:
            why = f"`{func_path}()` blocks the calling thread"
        elif meth in _BLOCKING_METHS:
            why = f"`.{meth}()` runs a kernel on the calling thread"
        elif recv_path is not None and meth:
            recv = state.env.get(recv_path)
            if recv is None:
                recv = self.seed(recv_path)
            if recv.ctor is not None and (recv.ctor, meth) in _BLOCKING_CTOR_METHS:
                why = (
                    f"`{recv_path}.{meth}()` ({recv.ctor}) blocks until the "
                    "underlying threads/sockets finish"
                )
        if why is None:
            # one level of local synchronous callees
            callee = self._resolve_callee(node, func_path, meth, recv_path)
            if callee is not None and not callee.is_async:
                inner = self._sync_callee_blocks(callee)
                if inner is not None:
                    why = (
                        f"sync callee `{callee.qualname}` calls {inner} on "
                        "the event-loop thread"
                    )
        if why is not None:
            self.report(
                "ASY003",
                node,
                f"blocking call inside `async def {fn_name}`: {why}; every "
                "connection on this loop stalls until it returns",
                hint="offload with loop.run_in_executor/asyncio.to_thread, "
                "or use the asyncio-native equivalent",
            )

    def _sync_callee_blocks(self, callee: FuncInfo) -> Optional[str]:
        for n in _iter_own_nodes(callee.node):
            if isinstance(n, ast.Call):
                fp = path_of(n.func)
                if fp in _BLOCKING_PATHS:
                    return f"`{fp}()`"
                if isinstance(n.func, ast.Attribute) and n.func.attr in _BLOCKING_METHS:
                    return f"`.{n.func.attr}()`"
        return None

    def _asy004_on_assign(
        self, path: str, value: Value, node: ast.AST, state: State
    ) -> None:
        if value.origin in (_TASK, _CORO):
            if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.value is not None:
                src = path_of(node.value)
                if src is not None and src != path and src in state.res:
                    del state.res[src]
                    self._task_line.pop(src, None)
            state.res[path] = "task"
            self._task_line[path] = getattr(node, "lineno", 0)
        elif path in state.res and value.origin not in (_TASK, _CORO):
            if not path.startswith("self."):
                self._report_once(
                    "drop",
                    "ASY004",
                    node,
                    path,
                    f"rebinding `{path}` drops the last handle to a pending "
                    "task/coroutine; its exception is never retrieved",
                    "await the previous handle (or cancel it) before "
                    "rebinding",
                )
            del state.res[path]
            self._task_line.pop(path, None)

    def on_return(self, stmt: ast.Return, value: Optional[Value], state: State) -> None:
        if stmt.value is not None:
            p = path_of(stmt.value)
            if p is not None and p in state.res:
                del state.res[p]  # ownership transfers to the caller
                self._task_line.pop(p, None)
        self._check_end_drops(stmt, state)

    def on_function_end(self, state: State) -> None:
        anchor: ast.AST = self.current.node if self.current is not None else ast.Pass()
        self._check_end_drops(anchor, state)

    def _check_end_drops(self, node: ast.AST, state: State) -> None:
        for path, status in state.res.items():
            if status != "task" or path.startswith("self."):
                # ``maybe`` joins and self-stored handles are not flagged:
                # object-lifetime handles are the owner's concern
                continue
            line = self._task_line.get(path, 0)
            self._report_once(
                "drop",
                "ASY004",
                node,
                path,
                f"task/coroutine handle `{path}` (created at line {line}) is "
                "dropped when the function exits: it was never awaited, "
                "stored, cancelled or given a done-callback",
                "await it, store it on an owner that drains it, or add a "
                "done-callback that observes its exception",
            )


# ---------------------------------------------------------------------------
# ASY005: deadline propagation (lexical over the async call graph)
# ---------------------------------------------------------------------------


def _wait_for_calls(fn_node: ast.AST) -> list[ast.Call]:
    out = []
    for n in _iter_own_nodes(fn_node):
        if isinstance(n, ast.Call):
            fp = path_of(n.func)
            if fp is not None and fp.rsplit(".", 1)[-1] == "wait_for":
                out.append(n)
    return out


def _unbounded_reason(call: ast.Call) -> Optional[str]:
    f = call.func
    if not isinstance(f, ast.Attribute):
        return None
    recv = path_of(f.value) or "…"
    if f.attr in _UNBOUNDED_AWAIT_METHS:
        return f"`{recv}.{f.attr}()`"
    if f.attr == "wait":
        bounded = any(
            k.arg == "timeout"
            and not (isinstance(k.value, ast.Constant) and k.value.value is None)
            for k in call.keywords
        )
        if not bounded:
            return f"`{recv}.wait()` (no timeout)"
    return None


def _resolve_async_callee(call: ast.Call, fn: FuncInfo, ctx: ModuleContext) -> Optional[str]:
    f = call.func
    if isinstance(f, ast.Name) and f.id in ctx.functions:
        return f.id
    if (
        isinstance(f, ast.Attribute)
        and isinstance(f.value, ast.Name)
        and f.value.id == "self"
        and fn.class_name
    ):
        qn = f"{fn.class_name}.{f.attr}"
        if qn in ctx.functions:
            return qn
    return None


def _deadline_findings(ctx: ModuleContext, source_path: str) -> list[Finding]:
    protected: dict[str, set[int]] = {}
    for qn, fn in ctx.functions.items():
        if not fn.is_async:
            continue
        ids: set[int] = set()
        for call in _wait_for_calls(fn.node):
            for sub in ast.walk(call):
                ids.add(id(sub))
        protected[qn] = ids

    def _own_awaits(fn: FuncInfo) -> list[ast.Await]:
        return [n for n in _iter_own_nodes(fn.node) if isinstance(n, ast.Await)]

    blocking_memo: dict[str, bool] = {}

    def _blocks_unboundedly(qn: str, stack: frozenset[str]) -> bool:
        if qn in blocking_memo:
            return blocking_memo[qn]
        fn = ctx.functions[qn]
        result = False
        for aw in _own_awaits(fn):
            if id(aw) in protected.get(qn, set()):
                continue
            op = aw.value
            if not isinstance(op, ast.Call):
                continue
            fp = path_of(op.func)
            if fp is not None and fp.rsplit(".", 1)[-1] == "wait_for":
                continue
            if _unbounded_reason(op) is not None:
                result = True
                break
            callee = _resolve_async_callee(op, fn, ctx)
            if (
                callee is not None
                and callee not in stack
                and ctx.functions[callee].is_async
                and _blocks_unboundedly(callee, stack | {qn})
            ):
                result = True
                break
        blocking_memo[qn] = result
        return result

    findings: list[Finding] = []
    for qn, fn in ctx.functions.items():
        if not fn.is_async or not _wait_for_calls(fn.node):
            continue  # no deadline intent shown: not a root
        for aw in _own_awaits(fn):
            if id(aw) in protected[qn]:
                continue
            op = aw.value
            if not isinstance(op, ast.Call):
                continue
            fp = path_of(op.func)
            if fp is not None and fp.rsplit(".", 1)[-1] == "wait_for":
                continue
            reason = _unbounded_reason(op)
            via = ""
            if reason is None:
                callee = _resolve_async_callee(op, fn, ctx)
                if (
                    callee is not None
                    and ctx.functions[callee].is_async
                    and _blocks_unboundedly(callee, frozenset({qn}))
                ):
                    reason = f"local async callee `{callee}`"
                    via = " (transitively)"
            if reason is None:
                continue
            findings.append(
                Finding(
                    rule="ASY005",
                    path=source_path,
                    line=aw.lineno,
                    message=(
                        f"`async def {fn.node.name}` enforces deadlines with "
                        f"asyncio.wait_for, but this await of {reason} can "
                        f"block unboundedly{via} outside any wait_for"
                    ),
                    hint="wrap the await in asyncio.wait_for (or give the "
                    "callee its own bounded timeout) so the function's "
                    "deadline covers every path",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def asyncsafety_findings(
    source_path: str,
    source: str,
    tree: Optional[ast.Module] = None,
    ctx: Optional[ModuleContext] = None,
) -> list[Finding]:
    """Run the async-safety passes (ASY001–ASY005) over one module."""
    if tree is None:
        try:
            tree = ast.parse(source, filename=source_path)
        except SyntaxError:
            return []
    if ctx is None:
        ctx = ModuleContext.build(source_path, tree)
    if not any(fn.is_async for fn in ctx.functions.values()):
        return []  # nothing async: every rule is vacuous

    def make(c: ModuleContext, summaries: Mapping[str, Value]) -> Interpreter:
        return AsyncSafetyPass(c, summaries, source_path=source_path)

    findings, _ = analyze_module(source_path, tree, make, ctx=ctx)
    findings.extend(_deadline_findings(ctx, source_path))
    return findings
