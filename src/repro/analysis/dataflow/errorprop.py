"""SZL103: cross-check declared ``ERROR_PROPAGATION`` against the kernel.

Every op module declares how the operation transforms the compressor's
pointwise error bound::

    ERROR_PROPAGATION = {"scalar_multiply": "scaled"}

The declaration is load-bearing — ``dispatch.py`` surfaces it to users as
the op's error contract — so a declaration looser *or* tighter than the
kernel is a correctness bug.  This pass rederives the mode from the
kernel body by interval reasoning over the quantization primitives it
reaches, and flags mismatches.

Derivation (most to least specific; first match wins):

``computation``
    the kernel's return annotation is not ``SZOpsCompressed`` — the op
    leaves the compressed domain entirely (reductions, inner products),
    so the bound is a derived analytical bound, not ``eps`` itself.
``scaled``
    the kernel reaches :func:`~repro.core.ops._partial.requantize`
    (directly or through module-local calls): bins are rescaled by the
    scalar factor and re-snapped, so the bound scales by ``|s|`` (plus
    half a new bin of re-quantization error).
``bounded-additive``
    the kernel combines two compressed operands (two
    ``SZOpsCompressed`` parameters) into a compressed result without
    requantizing: per-element errors add, so the result bound is
    ``eps_a + eps_b``.
``preserved``
    the kernel reaches an exact integer-domain shift primitive
    (``quantize_scalar`` / ``quantized_scalar_shift`` /
    ``shift_outliers``): bins move by an exact integer, the bin width is
    untouched, and the bound is carried through unchanged up to the
    scalar's own snap error.
``exact``
    none of the above: the kernel permutes or reinterprets stored bits
    (sign flips, metadata rewrites) and introduces no new error at all.

Modules whose ``ERROR_PROPAGATION`` is not a literal dict (``dispatch.py``
merges the per-module dicts with ``**``) are skipped — the per-module
declarations are the source of truth and each is checked where it lives.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.findings import Finding

__all__ = ["check_error_propagation", "derive_mode"]

#: Reaching one of these (by call-graph closure over module-local calls)
#: proves the kernel rescales bins: the error bound is *scaled*.
_SCALED_MARKERS = frozenset({"requantize"})

#: Reaching one of these proves an exact integer-domain shift: the error
#: bound is *preserved* (bin width untouched).
_PRESERVED_MARKERS = frozenset(
    {"quantize_scalar", "quantized_scalar_shift", "shift_outliers"}
)

_COMPRESSED_TYPE = "SZOpsCompressed"

_VALID_MODES = frozenset(
    {"exact", "preserved", "scaled", "bounded-additive", "computation"}
)


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """Terminal name of an annotation (``SZOpsCompressed`` in
    ``fmt.SZOpsCompressed`` or a bare name), or ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # string annotation, e.g. ``-> "SZOpsCompressed"``
        tail = node.value.rsplit(".", 1)[-1].strip()
        return tail or None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``SZOpsCompressed | float`` — a union is not the compressed type.
        return None
    return None


def _called_names(fn: ast.FunctionDef) -> set[str]:
    """Terminal names of every call inside ``fn`` (``f(...)`` → ``f``,
    ``mod.f(...)`` → ``f``)."""
    out: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            out.add(func.id)
        elif isinstance(func, ast.Attribute):
            out.add(func.attr)
    return out


def _reachable_markers(
    fn: ast.FunctionDef,
    local_fns: dict[str, ast.FunctionDef],
    markers: frozenset[str],
) -> bool:
    """Does ``fn`` reach any marker name through module-local calls?"""
    seen: set[str] = set()
    stack = [fn]
    while stack:
        cur = stack.pop()
        for name in _called_names(cur):
            if name in markers:
                return True
            if name in local_fns and name not in seen:
                seen.add(name)
                stack.append(local_fns[name])
    return False


def _compressed_param_count(fn: ast.FunctionDef) -> int:
    count = 0
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if _annotation_name(arg.annotation) == _COMPRESSED_TYPE:
            count += 1
    return count


def derive_mode(fn: ast.FunctionDef, local_fns: dict[str, ast.FunctionDef]) -> str:
    """Rederive the error-propagation mode of one kernel (see module doc)."""
    if _annotation_name(fn.returns) != _COMPRESSED_TYPE:
        return "computation"
    if _reachable_markers(fn, local_fns, _SCALED_MARKERS):
        return "scaled"
    if _compressed_param_count(fn) >= 2:
        return "bounded-additive"
    if _reachable_markers(fn, local_fns, _PRESERVED_MARKERS):
        return "preserved"
    return "exact"


def _literal_propagation(
    tree: ast.Module,
) -> Optional[tuple[dict[str, tuple[str, int]], int]]:
    """The module's literal ``ERROR_PROPAGATION`` dict as
    ``{op: (mode, key_lineno)}`` plus the assignment line, or ``None``
    when absent or not a pure literal (merged dicts are skipped)."""
    for stmt in tree.body:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "ERROR_PROPAGATION" for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return None
        out: dict[str, tuple[str, int]] = {}
        for key, val in zip(value.keys, value.values):
            if (
                key is None  # ``**spread`` entry — not a pure literal
                or not isinstance(key, ast.Constant)
                or not isinstance(key.value, str)
                or not isinstance(val, ast.Constant)
                or not isinstance(val.value, str)
            ):
                return None
            out[key.value] = (val.value, key.lineno)
        return out, stmt.lineno
    return None


def _resolve_kernel(
    op_name: str, local_fns: dict[str, ast.FunctionDef]
) -> Optional[ast.FunctionDef]:
    """The kernel implementing ``op_name``: exact name match, else the
    module's single public function (``negate.py`` declares the op
    ``"negation"`` but names the function ``negate``)."""
    if op_name in local_fns:
        return local_fns[op_name]
    public = [f for n, f in local_fns.items() if not n.startswith("_")]
    if len(public) == 1:
        return public[0]
    return None


def check_error_propagation(
    source_path: str,
    source: str,
    tree: Optional[ast.Module] = None,
) -> list[Finding]:
    """Run the SZL103 declaration cross-check over one module.

    ``tree`` lets the driver share one parse across every pass.
    """
    if tree is None:
        try:
            tree = ast.parse(source, filename=source_path)
        except SyntaxError:
            return []
    parsed = _literal_propagation(tree)
    if parsed is None:
        return []
    declared, decl_line = parsed
    local_fns = {
        stmt.name: stmt for stmt in tree.body if isinstance(stmt, ast.FunctionDef)
    }
    findings: list[Finding] = []
    for op_name, (mode, line) in declared.items():
        if mode not in _VALID_MODES:
            findings.append(
                Finding(
                    rule="SZL103",
                    path=source_path,
                    line=line,
                    message=(
                        f"unknown error-propagation mode {mode!r} declared "
                        f"for op {op_name!r}"
                    ),
                    hint="valid modes: " + ", ".join(sorted(_VALID_MODES)),
                )
            )
            continue
        kernel = _resolve_kernel(op_name, local_fns)
        if kernel is None:
            findings.append(
                Finding(
                    rule="SZL103",
                    path=source_path,
                    line=line,
                    message=(
                        f"cannot resolve a kernel for declared op {op_name!r}: "
                        "no function of that name and the module does not have "
                        "exactly one public function"
                    ),
                    hint="name the kernel after the op, or keep one public "
                    "kernel per single-op module",
                )
            )
            continue
        derived = derive_mode(kernel, local_fns)
        if derived != mode:
            findings.append(
                Finding(
                    rule="SZL103",
                    path=source_path,
                    line=line,
                    message=(
                        f"ERROR_PROPAGATION declares {mode!r} for op "
                        f"{op_name!r} but the kernel {kernel.name!r} derives "
                        f"{derived!r}"
                    ),
                    hint=(
                        "fix whichever is wrong: the declaration misleads "
                        "every error-bound consumer downstream of dispatch"
                    ),
                )
            )
    del decl_line  # anchor per-key; the assignment line is not reported
    return findings
