"""SHM001/SHM002: shared-memory segment lifetime verification.

POSIX shared memory is the one resource in this codebase the garbage
collector cannot save you from: a ``SharedMemory(create=True)`` segment
that is never ``unlink``-ed outlives the process in ``/dev/shm``, and a
worker that touches a segment after ``destroy()`` reads unmapped memory.
This pass tracks every acquired segment through the abstract
interpreter's path-sensitive state — **including exception edges** —
and reports:

``SHM001`` (use-after-release)
    any attribute access or method call on a resource the engine proved
    *definitely* released on this path (``maybe``-released values are
    not flagged: the lattice is conservative in the other direction).
``SHM002`` (leak)
    a resource still open (or only maybe released) when the function
    falls off the end, **or** open at a statement that may raise with no
    protection in scope.

Acquisition is constructing ``ShmArena(...)`` or
``SharedMemory(create=True)``; *attaching* to an existing segment by
name (``SharedMemory(name=...)``) is not an acquisition — the attaching
side must not unlink what it does not own.  Release is ``.destroy()`` or
``.unlink()`` (``.close()`` alone only unmaps the local view and does
not release the segment).

A raise point counts as *protected* when one of these is in scope:

* an enclosing ``with`` statement binding the resource (its ``__exit__``
  owns cleanup);
* an enclosing ``try`` whose ``finally`` or handler bodies release the
  resource — either directly (``res.destroy()`` / ``res.unlink()``) or
  through a *releaser method*: ``self.m()`` where ``m`` both reassigns
  the resource attribute and calls ``unlink``/``destroy`` (the
  ``shm, self._shm = self._shm, None`` swap idiom in ``ShmArena``).

Ownership transfers end tracking: returning the resource hands it to
the caller, passing it to an unknown call makes the callee responsible,
and storing it on ``self`` moves it to object lifetime (inside
``__init__`` the ``self.*`` binding stays tracked for raise-protection,
but is exempt from the end-of-function leak check).
"""

from __future__ import annotations

import ast
from typing import Mapping, Optional

from repro.analysis.dataflow.engine import (
    Interpreter,
    ModuleContext,
    State,
    _TryFrame,
    _WithFrame,
    analyze_module,
    path_of,
)
from repro.analysis.dataflow.lattice import Value
from repro.analysis.findings import Finding

__all__ = ["shm_findings", "ShmLifePass"]

#: Constructors whose result owns a shared-memory segment.
_RESOURCE_CTORS = frozenset({"ShmArena"})
#: ``SharedMemory`` owns the segment only when ``create=True``.
_CONDITIONAL_CTORS = frozenset({"SharedMemory"})

#: Calling one of these on a resource releases the segment.
_RELEASE_METHS = frozenset({"destroy", "unlink"})

_ACQUIRED = ("acquired",)


def _releaser_attrs(cls: ast.ClassDef) -> dict[str, set[str]]:
    """Per method: the ``self.<attr>`` resources it releases.

    A method releases ``attr`` when it calls ``self.attr.destroy()`` /
    ``.unlink()`` directly, or when it reassigns ``self.attr`` *and*
    calls ``unlink``/``destroy`` on something (the swap idiom moves the
    handle to a local before unlinking, so receiver paths alone miss it).
    """
    out: dict[str, set[str]] = {}
    for item in cls.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        direct: set[str] = set()
        stored: set[str] = set()
        releases_something = False
        for node in ast.walk(item):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _RELEASE_METHS:
                    releases_something = True
                    rp = path_of(node.func.value)
                    if rp and rp.startswith("self."):
                        direct.add(rp[len("self.") :])
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for t in ast.walk(target):
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                            and isinstance(t.ctx, ast.Store)
                        ):
                            stored.add(t.attr)
        released = direct | (stored if releases_something else set())
        if released:
            out[item.name] = released
    return out


class ShmLifePass(Interpreter):
    """Shared-memory lifetime pass (SHM001, SHM002)."""

    CTOR_NAMES = _RESOURCE_CTORS | _CONDITIONAL_CTORS

    def __init__(
        self,
        ctx: ModuleContext,
        summaries: Optional[Mapping[str, Value]] = None,
        source_path: str = "<module>",
    ) -> None:
        super().__init__(ctx, summaries, source_path=source_path)
        self._acq_line: dict[str, int] = {}
        self._reported: set[tuple[str, str, str]] = set()
        # one interpreter is built per analyzed function: memoize the
        # releaser index on the shared ModuleContext instead of re-walking
        # the whole module AST every time
        cached = ctx.pass_cache.get("shm_releasers")
        if cached is None:
            cached = {name: _releaser_attrs(node) for name, node in ctx.classes.items()}
            ctx.pass_cache["shm_releasers"] = cached
        self._releasers: dict[str, dict[str, set[str]]] = cached  # type: ignore[assignment]

    # --------------------------------------------------------------- reporting

    def _report_once(
        self, kind: str, rule: str, node: ast.AST, path: str, message: str, hint: str
    ) -> None:
        key = (kind, rule, path)
        if key in self._reported:
            return
        self._reported.add(key)
        self.report(rule, node, message, hint=hint)

    # ------------------------------------------------------------ acquisition

    def on_call(
        self,
        node: ast.Call,
        func_path: Optional[str],
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Optional[Value]:
        if func_path is not None:
            recv, _, meth = func_path.rpartition(".")
            leaf = func_path.rsplit(".", 1)[-1]
            # self.<releaser>() releases the attrs that method manages —
            # checked before the generic branch because releasers are often
            # themselves named destroy/unlink
            if recv == "self" and self.current is not None and self.current.class_name:
                released = self._releasers.get(self.current.class_name, {}).get(meth)
                if released:
                    for attr in released:
                        p = f"self.{attr}"
                        if p in state.res:
                            state.res[p] = "released"
                    return None
            # release call on a tracked resource
            if recv and meth in _RELEASE_METHS:
                if state.res.get(recv) == "released":
                    self._report_once(
                        "uar",
                        "SHM001",
                        node,
                        recv,
                        f"`{recv}.{meth}()` on a segment already released on "
                        "this path (double release)",
                        "release exactly once; gate the second call on the "
                        "handle still being live",
                    )
                if recv in state.res:
                    state.res[recv] = "released"
                return None
            # any other method call on a definitely-released resource
            if recv and state.res.get(recv) == "released":
                self._report_once(
                    "uar",
                    "SHM001",
                    node,
                    recv,
                    f"`{recv}.{meth}()` after the segment was released on "
                    "this path",
                    "restructure so no access follows destroy()/unlink(), "
                    "or re-acquire the segment",
                )
            # acquisition
            acquired = leaf in _RESOURCE_CTORS
            if leaf in _CONDITIONAL_CTORS:
                create = kwargs.get("create")
                acquired = create is not None and create.itv.lo == 1
            if acquired:
                return Value.obj(ctor=leaf, origin=_ACQUIRED)
        # escape: a resource passed to a call we cannot see transfers
        # ownership to the callee — stop tracking rather than guess
        for arg in list(node.args) + [k.value for k in node.keywords]:
            p = path_of(arg)
            if p and p in state.res and state.res[p] != "released":
                del state.res[p]
                self._acq_line.pop(p, None)
        return None

    def on_assign(self, path: str, value: Value, node: ast.AST, state: State) -> None:
        if value.origin == _ACQUIRED and value.ctor in self.CTOR_NAMES:
            # ``self.x = arena`` after ``arena = ShmArena(...)`` is a move,
            # not a second acquisition: retire the source binding
            if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.value is not None:
                src = path_of(node.value)
                if src is not None and src != path and src in state.res:
                    del state.res[src]
                    self._acq_line.pop(src, None)
            state.res[path] = "open"
            self._acq_line[path] = getattr(node, "lineno", 0)
        elif path in state.res and value.origin != _ACQUIRED:
            # rebinding the name to something else loses the only handle
            if state.res[path] != "released":
                self._report_once(
                    "leak",
                    "SHM002",
                    node,
                    path,
                    f"rebinding `{path}` drops the last handle to an "
                    "unreleased shared-memory segment",
                    "destroy()/unlink() the segment before rebinding",
                )
            del state.res[path]

    # ----------------------------------------------------------------- usage

    def on_attr_load(self, base_path: str, attr: str, node: ast.AST, state: State) -> None:
        if state.res.get(base_path) == "released":
            self._report_once(
                "uar",
                "SHM001",
                node,
                base_path,
                f"`{base_path}.{attr}` read after the segment was released "
                "on this path",
                "access the segment only while the handle is live",
            )

    # --------------------------------------------------------------- lifetime

    def _protected(self, path: str) -> bool:
        for frame in reversed(self.frames):
            if isinstance(frame, _WithFrame) and path in frame.bound:
                return True
            if isinstance(frame, _TryFrame) and self._try_releases(frame.node, path):
                return True
        return False

    def _try_releases(self, try_node: ast.Try, path: str) -> bool:
        bodies: list[ast.stmt] = list(try_node.finalbody)
        for handler in try_node.handlers:
            bodies.extend(handler.body)
        return any(self._stmt_releases(stmt, path) for stmt in bodies)

    def _stmt_releases(self, stmt: ast.stmt, path: str) -> bool:
        cls = self.current.class_name if self.current is not None else None
        releasers = self._releasers.get(cls, {}) if cls else {}
        for node in ast.walk(stmt):
            if not (
                isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            ):
                continue
            rp = path_of(node.func.value)
            if rp == path and node.func.attr in _RELEASE_METHS:
                return True
            if (
                rp == "self"
                and path.startswith("self.")
                and path[len("self.") :] in releasers.get(node.func.attr, set())
            ):
                return True
        return False

    def _check_raise_leaks(self, stmt: ast.stmt, state: State) -> None:
        for path, status in state.res.items():
            if status == "released":
                continue
            if self._protected(path):
                continue
            # The release call itself is not a leak site: if destroy()
            # raises midway, no guard at this level can help.
            if self._stmt_releases(stmt, path):
                continue
            self._report_once(
                "raise-leak",
                "SHM002",
                stmt,
                path,
                f"an exception here leaks the shared-memory segment held by "
                f"`{path}` (acquired at line {self._acq_line.get(path, 0)}, "
                "no release on the exception edge)",
                "wrap the region in try/except that destroys the segment "
                "before re-raising, or bind it in a with statement",
            )

    def on_possible_raise(self, stmt: ast.stmt, state: State) -> None:
        self._check_raise_leaks(stmt, state)

    def on_raise(self, stmt: ast.Raise, state: State) -> None:
        self._check_raise_leaks(stmt, state)

    def on_return(self, stmt: ast.Return, value: Optional[Value], state: State) -> None:
        if stmt.value is not None:
            p = path_of(stmt.value)
            if p is not None and p in state.res:
                # ownership transfers to the caller
                del state.res[p]
                self._acq_line.pop(p, None)
        self._check_end_leaks(stmt, state)

    def on_with_exit(self, node: ast.With, state: State) -> None:
        for item in node.items:
            p = (
                path_of(item.optional_vars)
                if item.optional_vars is not None
                else path_of(item.context_expr)
            )
            if p is not None and state.res.get(p) in ("open", "maybe"):
                state.res[p] = "released"

    def on_function_end(self, state: State) -> None:
        anchor = (
            self.current.node if self.current is not None else ast.Pass()
        )
        self._check_end_leaks(anchor, state)

    def _check_end_leaks(self, node: ast.AST, state: State) -> None:
        for path, status in state.res.items():
            if status == "released":
                continue
            if path.startswith("self."):
                # stored on the object: lifetime is the object's, checked
                # via the releaser protocol, not per-function
                continue
            maybe = " on some path" if status == "maybe" else ""
            line = self._acq_line.get(path, 0)
            self._report_once(
                "leak",
                "SHM002",
                node,
                path,
                f"shared-memory segment `{path}` (acquired at line {line}) "
                f"is not released{maybe} before the function exits",
                "destroy()/unlink() the segment, return it to the caller, "
                "or store it on an owner that releases it",
            )


def shm_findings(
    source_path: str,
    source: str,
    tree: Optional[ast.Module] = None,
    ctx: Optional[ModuleContext] = None,
) -> list[Finding]:
    """Run the shm-lifetime pass over one module's source.

    ``tree``/``ctx`` let the driver share one parse and one module index
    across every pass over the same file.
    """
    if tree is None:
        try:
            tree = ast.parse(source, filename=source_path)
        except SyntaxError:
            return []

    def make(c: ModuleContext, summaries: Mapping[str, Value]) -> Interpreter:
        return ShmLifePass(c, summaries, source_path=source_path)

    findings, _ = analyze_module(source_path, tree, make, ctx=ctx)
    return findings
