"""Per-function abstract interpreter with call summaries.

The engine executes a function's AST over the lattices in
:mod:`~repro.analysis.dataflow.lattice`:

* an **environment** maps canonical access paths (``"q"``,
  ``"out.outliers"``, ``"arrays['q']"``) to abstract :class:`Value`\\ s;
* **branch refinement** narrows the environment on ``if``/``while``/
  ``assert`` edges, understanding the repo's guard idioms — ``x.size``
  truthiness, ``np.all(np.isfinite(x))``, ``np.abs(x).max() >= bound``,
  and the ``peak = |x|.max() + |y|`` / ``if peak >= Q_LIMIT: raise``
  shape, which records a *bound fact* proving ``x ± y`` stays in range;
* **raise pruning**: a branch that ends in ``raise`` contributes nothing
  to the join after the ``if``;
* **loops** run to a small fixpoint with interval widening;
* ``try``/``with`` maintain a protection stack that lifetime passes
  (shm) query, and handler entry states join every in-body raise point;
* **call summaries**: module-local functions are analyzed first with
  name-based seeds; a second pass re-analyzes private functions with the
  join of their observed call-site arguments and gives every caller the
  callee's return summary.

Passes subclass :class:`Interpreter` and override the ``check_*`` /
``on_*`` hooks; the engine itself emits no findings.

Known soundness caveats (documented in ``docs/ANALYSIS.md``): NumPy view
aliasing is not modeled (writes through a view do not update the base
array's binding — summary returns widen bottom intervals to ⊤ to
compensate), comprehension bodies are opaque, and reseeding a havocked
quantized name assumes callees preserve the ``|q| < Q_LIMIT`` invariant
their own analysis verifies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.analysis.dataflow.lattice import (
    KIND_BOOL,
    KIND_FLOAT,
    KIND_I64,
    KIND_OBJ,
    KIND_PYINT,
    Q_LIMIT,
    Interval,
    Value,
    _join_kind,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.numeric import QUANTIZED_NAMES

__all__ = [
    "FunctionResult",
    "Interpreter",
    "ModuleContext",
    "State",
    "analyze_module",
    "path_of",
    "terminal_name",
]

_NUMPY_ROOTS = {"np", "numpy"}

#: dtype spellings → value kind ("int" targets trigger the cast check).
_DTYPE_KINDS: dict[str, str] = {}
for _n in ("int64", "int32", "int16", "int8", "intp", "uint64", "uint32", "uint16", "uint8", "long"):
    _DTYPE_KINDS[_n] = KIND_I64
for _n in ("float64", "float32", "float16", "double", "single", "longdouble"):
    _DTYPE_KINDS[_n] = KIND_FLOAT
for _n in ("bool_", "bool"):
    _DTYPE_KINDS[_n] = KIND_BOOL
_DTYPE_STR_KINDS = {"i": KIND_I64, "u": KIND_I64, "f": KIND_FLOAT, "b": KIND_BOOL}


def path_of(node: ast.AST) -> Optional[str]:
    """Canonical access path of an l-value-shaped expression, or None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = path_of(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Subscript):
        base = path_of(node.value)
        if base is None:
            return None
        if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, str):
            return f"{base}[{node.slice.value!r}]"
        # positional/slice indexing shares the base array's element range
        return base
    if isinstance(node, ast.Call):
        return None
    return None


def terminal_name(path: str) -> str:
    """Last meaningful component of a canonical path."""
    if path.endswith("]"):
        key = path[path.rfind("[") + 1 : -1]
        return key.strip("'\"")
    return path.rsplit(".", 1)[-1]


def _dtype_kind_of(node: ast.expr) -> Optional[str]:
    """Value kind named by a dtype expression (np.int64, "<i8", ...)."""
    if isinstance(node, ast.Attribute):
        return _DTYPE_KINDS.get(node.attr)
    if isinstance(node, ast.Name):
        return _DTYPE_KINDS.get(node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        s = node.value.lstrip("<>=|")
        return _DTYPE_STR_KINDS.get(s[:1]) if s else None
    return None


def _annotation_ctor(ann: ast.expr) -> Optional[str]:
    """Class name an attribute annotation types it as, or ``None``.

    Understands ``X``, ``mod.X``, ``X | None`` / ``None | X`` and
    ``Optional[X]``; builtin scalar annotations are handled separately
    through ``class_field_kind``.
    """
    if isinstance(ann, ast.Name):
        return None if ann.id in ("int", "float", "bool", "str", "bytes", "None") else ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _annotation_ctor(ann.left) or _annotation_ctor(ann.right)
    if isinstance(ann, ast.Subscript):
        base = ann.value
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if name == "Optional" and isinstance(ann.slice, ast.expr):
            return _annotation_ctor(ann.slice)
        return None
    if isinstance(ann, ast.Constant) and ann.value is None:
        return None
    return None


# ---------------------------------------------------------------------------
# module context: function / class indexes shared by every pass
# ---------------------------------------------------------------------------


#: Either flavour of function definition: the engine analyzes both, and
#: the async-safety passes key on which one they are in.
FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FuncInfo:
    qualname: str
    node: FuncNode
    class_name: Optional[str] = None

    @property
    def is_private(self) -> bool:
        return self.node.name.startswith("_") and not self.node.name.startswith("__")

    @property
    def is_internal(self) -> bool:
        """Private function, or any method of a module-private class.

        Every call site of an internal function is visible in this
        module, so round 2 may refine its parameters to the join of the
        observed arguments (`_Reader.u16` sees the real wire taint).
        """
        return self.is_private or (
            self.class_name is not None
            and self.class_name.startswith("_")
            and not self.node.name.startswith("__")
        )

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


@dataclass
class ModuleContext:
    """Indexes over one module: functions, classes, ctor-typed attributes."""

    path: str
    tree: ast.Module
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: class → method name → set of ``self.<attr>`` lock attrs it acquires
    #: (filled lazily by the lock pass; here for cross-pass sharing)
    class_attr_ctor: dict[str, dict[str, str]] = field(default_factory=dict)
    class_field_kind: dict[str, dict[str, str]] = field(default_factory=dict)

    @staticmethod
    def build(path: str, tree: ast.Module) -> "ModuleContext":
        ctx = ModuleContext(path=path, tree=tree)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ctx.functions[node.name] = FuncInfo(node.name, node)
            elif isinstance(node, ast.ClassDef):
                ctx.classes[node.name] = node
                ctors: dict[str, str] = {}
                kinds: dict[str, str] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qn = f"{node.name}.{item.name}"
                        ctx.functions[qn] = FuncInfo(qn, item, class_name=node.name)
                    elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                        ann = item.annotation
                        if isinstance(ann, ast.Name):
                            if ann.id == "int":
                                kinds[item.target.id] = KIND_PYINT
                            elif ann.id == "float":
                                kinds[item.target.id] = KIND_FLOAT
                init = next(
                    (i for i in node.body if isinstance(i, ast.FunctionDef) and i.name == "__init__"),
                    None,
                )
                if init is not None:
                    for stmt in ast.walk(init):
                        if (
                            isinstance(stmt, ast.Assign)
                            and len(stmt.targets) == 1
                            and isinstance(stmt.targets[0], ast.Attribute)
                            and isinstance(stmt.targets[0].value, ast.Name)
                            and stmt.targets[0].value.id == "self"
                            and isinstance(stmt.value, ast.Call)
                        ):
                            fn = stmt.value.func
                            cname = fn.id if isinstance(fn, ast.Name) else (
                                fn.attr if isinstance(fn, ast.Attribute) else None
                            )
                            if cname:
                                ctors[stmt.targets[0].attr] = cname
                        elif (
                            isinstance(stmt, ast.AnnAssign)
                            and isinstance(stmt.target, ast.Attribute)
                            and isinstance(stmt.target.value, ast.Name)
                            and stmt.target.value.id == "self"
                        ):
                            # `self.backend: ExecutionBackend | None = ...`
                            # types the attribute even when the assigned
                            # expression is conditional
                            cname = _annotation_ctor(stmt.annotation)
                            if cname and stmt.target.attr not in ctors:
                                ctors[stmt.target.attr] = cname
                ctx.class_attr_ctor[node.name] = ctors
                ctx.class_field_kind[node.name] = kinds
        return ctx


# ---------------------------------------------------------------------------
# abstract state
# ---------------------------------------------------------------------------


@dataclass
class State:
    env: dict[str, Value] = field(default_factory=dict)
    #: proved |a ± b| bounds, keyed by the sorted path pair
    bounds: dict[tuple[str, str], int] = field(default_factory=dict)
    #: generic per-pass resource states (shm lifetime): path → state str
    res: dict[str, str] = field(default_factory=dict)
    reachable: bool = True

    def copy(self) -> "State":
        return State(dict(self.env), dict(self.bounds), dict(self.res), self.reachable)

    def same_as(self, other: "State") -> bool:
        return (
            self.reachable == other.reachable
            and self.env == other.env
            and self.bounds == other.bounds
            and self.res == other.res
        )


def _join_res(a: str, b: str) -> str:
    if a == b:
        return a
    open_ish = {"open", "maybe"}
    if a in open_ish or b in open_ish:
        return "maybe"
    return "maybe"


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------


@dataclass
class FunctionResult:
    return_value: Value
    findings: list[Finding]
    call_args: dict[str, list[tuple[list[Value], dict[str, Value]]]]
    end_state: State


class _TryFrame:
    __slots__ = ("node", "raise_states")

    def __init__(self, node: ast.Try) -> None:
        self.node = node
        self.raise_states: list[State] = []


class _WithFrame:
    __slots__ = ("node", "bound", "is_async")

    def __init__(self, node: Union[ast.With, ast.AsyncWith], bound: list[str]) -> None:
        self.node = node
        self.bound = bound
        self.is_async = isinstance(node, ast.AsyncWith)


class Interpreter:
    """Abstract interpreter for one function.  Subclass to add checks."""

    #: extra names treated as known constructors (pass-specific typing)
    CTOR_NAMES: frozenset[str] = frozenset()

    def __init__(
        self,
        ctx: ModuleContext,
        summaries: Optional[Mapping[str, Value]] = None,
        source_path: str = "<module>",
    ) -> None:
        self.ctx = ctx
        self.summaries = dict(summaries or {})
        self.source_path = source_path
        self.findings: list[Finding] = []
        self.call_args: dict[str, list[tuple[list[Value], dict[str, Value]]]] = {}
        self.frames: list[object] = []
        self.current: Optional[FuncInfo] = None
        self._break_states: list[list[State]] = []
        self._returns: list[Value] = []
        self._reported_sites: set[tuple[str, int, int]] = set()
        #: ids of Call nodes that are the direct operand of an ``await``
        #: (so ``on_call`` can tell an awaited call from a bare one)
        self._awaited_calls: set[int] = set()

    # ------------------------------------------------------------------ hooks

    def seed(self, path: str) -> Value:
        """Abstract value assumed for a never-assigned load of ``path``."""
        name = terminal_name(path)
        if name == "Q_LIMIT":
            return Value.pyint(Interval.const(Q_LIMIT))
        if name in QUANTIZED_NAMES:
            return Value.quantized_plane()
        if self.current is not None and self.current.class_name and path.startswith("self."):
            attr = path.split(".", 1)[1]
            cls = self.current.class_name
            ctor = self.ctx.class_attr_ctor.get(cls, {}).get(attr)
            if ctor:
                return Value.obj(ctor=ctor)
            kind = self.ctx.class_field_kind.get(cls, {}).get(attr)
            if kind:
                return Value(kind)
        return Value.obj()

    def check_int_arith(
        self,
        node: ast.AST,
        opname: str,
        lv: Value,
        rv: Value,
        itv: Interval,
        state: State,
    ) -> None:
        """Called for int64 Add/Sub/Mult/Pow/LShift results (ranges pass)."""

    def check_cast(self, node: ast.AST, src: Value, dst_kind: str, state: State) -> None:
        """Called for every ``.astype(dtype)`` (ranges pass)."""

    def on_call(
        self,
        node: ast.Call,
        func_path: Optional[str],
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Optional[Value]:
        """Observe every call after evaluation; return a Value to override."""
        return None

    def on_assign(self, path: str, value: Value, node: ast.AST, state: State) -> None:
        """Observe every strong store to a path."""

    def on_attr_load(self, base_path: str, attr: str, node: ast.AST, state: State) -> None:
        """Observe attribute loads whose base has a canonical path."""

    def on_possible_raise(self, stmt: ast.stmt, state: State) -> None:
        """Called before each simple statement that may raise."""

    def on_return(self, stmt: ast.Return, value: Optional[Value], state: State) -> None:
        """Called at each return, after pending finallys ran."""

    def on_function_end(self, state: State) -> None:
        """Called on the fall-off-the-end state (if reachable)."""

    def on_with_enter(self, item: ast.withitem, value: Value, path: Optional[str], state: State) -> None:
        """Called when a with-item context is entered."""

    def on_with_exit(self, node: Union[ast.With, ast.AsyncWith], state: State) -> None:
        """Called when a with-block exits normally."""

    def on_raise(self, stmt: ast.Raise, state: State) -> None:
        """Called at explicit raise statements."""

    def on_await(self, node: ast.AST, value: Optional[Value], state: State) -> None:
        """Called at every await point — an ``await`` expression, an
        ``async with`` enter/exit, or an ``async for`` iteration step.

        Every await is an interleaving point: any other coroutine on the
        event loop (and, through ``run_in_executor`` hand-offs, any pool
        thread) may run before control returns.  The async-safety passes
        key their atomicity and lock-discipline checks on this hook.
        """

    def check_slice(self, node: ast.Subscript, bounds: list[Value], state: State) -> None:
        """Called for every slice expression with its bound values (taint)."""

    def check_index(self, node: ast.Subscript, index: Value, state: State) -> None:
        """Called for every non-slice subscript with its index value (taint)."""

    # ------------------------------------------------------------------ report

    def report(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        hint: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        # loop bodies run to a small fixpoint, re-visiting each node up to
        # four times — report each site once
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (rule, line, col)
        if key in self._reported_sites:
            return
        self._reported_sites.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.source_path,
                line=line,
                message=message,
                hint=hint,
                severity=severity,
            )
        )

    # ------------------------------------------------------------------ driver

    def run(self, fn: FuncInfo, params: Optional[Mapping[str, Value]] = None) -> FunctionResult:
        self.current = fn
        self._returns = []
        state = State()
        argnames = [a.arg for a in fn.node.args.posonlyargs + fn.node.args.args]
        for i, name in enumerate(argnames):
            if i == 0 and name == "self" and fn.class_name:
                state.env["self"] = Value.obj(ctor=fn.class_name)
            elif params is not None and name in params:
                state.env[name] = params[name]
            else:
                state.env[name] = self.seed(name)
        for a in fn.node.args.kwonlyargs:
            state.env[a.arg] = (
                params[a.arg] if params is not None and a.arg in params else self.seed(a.arg)
            )
        end = self.exec_block(fn.node.body, state)
        if end.reachable:
            self.on_function_end(end)
        ret = Value.obj()
        if self._returns:
            ret = self._returns[0]
            for v in self._returns[1:]:
                ret = ret.join(v)
            if ret.itv.empty:
                # widen ⊥ element ranges at the summary boundary: a function
                # whose return was only ever written through views looks
                # uninitialized to us (aliasing caveat)
                ret = ret.with_itv(Interval.top())
        return FunctionResult(ret, self.findings, self.call_args, end)

    # ------------------------------------------------------------------ stmts

    _SIMPLE = (ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Return, ast.Raise, ast.Assert, ast.Delete)

    def exec_block(self, stmts: Sequence[ast.stmt], state: State) -> State:
        for stmt in stmts:
            if not state.reachable:
                break
            if isinstance(stmt, self._SIMPLE):
                self._note_raise_point(stmt, state)
            state = self.exec_stmt(stmt, state)
        return state

    def _note_raise_point(self, stmt: ast.stmt, state: State) -> None:
        # Awaits may raise even without a call operand (CancelledError,
        # or the awaited task's stored exception).
        may_raise = isinstance(stmt, ast.Raise) or any(
            isinstance(n, (ast.Call, ast.Subscript, ast.Await)) for n in ast.walk(stmt)
        )
        if not may_raise:
            return
        for fr in self.frames:
            if isinstance(fr, _TryFrame):
                fr.raise_states.append(state.copy())
        self.on_possible_raise(stmt, state)

    def exec_stmt(self, stmt: ast.stmt, state: State) -> State:
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, state)
            return state
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, state)
            for target in stmt.targets:
                self.assign_target(target, value, stmt.value, stmt, state)
            return state
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, state)
                self.assign_target(stmt.target, value, stmt.value, stmt, state)
            return state
        if isinstance(stmt, ast.AugAssign):
            return self._exec_augassign(stmt, state)
        if isinstance(stmt, ast.Return):
            return self._exec_return(stmt, state)
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, state)
            self.on_raise(stmt, state)
            state.reachable = False
            return state
        if isinstance(stmt, ast.Assert):
            return self.refine(state, stmt.test, True)
        if isinstance(stmt, ast.If):
            t = self.exec_block(stmt.body, self.refine(state.copy(), stmt.test, True))
            f = self.exec_block(stmt.orelse, self.refine(state.copy(), stmt.test, False))
            return self.join_states(t, f)
        if isinstance(stmt, ast.While):
            return self._exec_loop(stmt, state, test=stmt.test)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._exec_loop(stmt, state, for_node=stmt)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, state)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, state)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            if isinstance(stmt, ast.Break) and self._break_states:
                self._break_states[-1].append(state.copy())
            state.reachable = False
            return state
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state  # nested defs are opaque
        if isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                p = path_of(t)
                if p:
                    state.env.pop(p, None)
                    self.invalidate(p, state)
            return state
        return state

    # ------------------------------------------------------------------ pieces

    def _exec_return(self, stmt: ast.Return, state: State) -> State:
        value = self.eval(stmt.value, state) if stmt.value is not None else None
        # returns run pending finally blocks (inner → outer)
        for fr in reversed(self.frames):
            if isinstance(fr, _TryFrame) and fr.node.finalbody:
                state = self.exec_block(fr.node.finalbody, state)
        self.on_return(stmt, value, state)
        self._returns.append(value if value is not None else Value.obj())
        state.reachable = False
        return state

    def _exec_augassign(self, stmt: ast.AugAssign, state: State) -> State:
        tpath = path_of(stmt.target)
        lv = self._load_path(tpath, state) if tpath else Value.obj()
        rv = self.eval(stmt.value, state)
        rpath = path_of(stmt.value)
        result = self.binop(stmt.op, lv, rv, stmt, state, lpath=tpath, rpath=rpath)
        if tpath:
            if isinstance(stmt.target, ast.Subscript) and not tpath.endswith("]"):
                cur = state.env.get(tpath, self.seed(tpath))
                state.env[tpath] = cur.join(result)
            else:
                state.env[tpath] = result
            self.invalidate(tpath, state)
            self.on_assign(tpath, result, stmt, state)
        return state

    def assign_target(
        self,
        target: ast.expr,
        value: Value,
        value_node: Optional[ast.expr],
        stmt: ast.stmt,
        state: State,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            elts_vals: list[Value]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(value_node.elts) == len(target.elts):
                elts_vals = [self.eval(e, state) for e in value_node.elts]
            else:
                # elements of a tainted aggregate are tainted
                # (`(length,) = struct.unpack("<I", header)`)
                elt = Value(tainted=value.tainted)
                elts_vals = [elt] * len(target.elts)
            for sub, sv in zip(target.elts, elts_vals):
                self.assign_target(sub, sv, None, stmt, state)
            return
        if isinstance(target, ast.Starred):
            self.assign_target(target.value, Value.obj(), None, stmt, state)
            return
        path = path_of(target)
        if path is None:
            return
        if isinstance(target, ast.Subscript) and not path.endswith("]"):
            # element store: weak update of the base array's element range
            if isinstance(target.slice, ast.expr):
                self.eval(target.slice, state)
            cur = state.env.get(path, self.seed(path))
            state.env[path] = cur.join(value)
        else:
            self.invalidate(path, state)
            state.env[path] = value
        self.on_assign(path, value, stmt, state)

    def invalidate(self, path: str, state: State) -> None:
        """Reassignment of ``path`` retires facts and bindings built on it."""
        for key in [k for k in state.bounds if path in k]:
            del state.bounds[key]
        for k in [k for k in state.env if k != path and (k.startswith(path + ".") or k.startswith(path + "["))]:
            del state.env[k]
        for k, v in list(state.env.items()):
            if v.origin and path in v.origin[1:]:
                state.env[k] = v.with_origin(None)

    def _exec_loop(
        self,
        stmt: ast.stmt,
        state: State,
        test: Optional[ast.expr] = None,
        for_node: Optional[Union[ast.For, ast.AsyncFor]] = None,
    ) -> State:
        body = stmt.body  # type: ignore[attr-defined]
        orelse = stmt.orelse  # type: ignore[attr-defined]
        elem = Value.obj()
        if for_node is not None:
            it = self.eval(for_node.iter, state)
            ipath = path_of(for_node.iter)
            if ipath and it.kind in (KIND_I64, KIND_FLOAT):
                elem = it
            elif isinstance(for_node.iter, ast.Call):
                fp = path_of(for_node.iter.func)
                if fp in ("range", "enumerate"):
                    elem = Value.pyint(Interval(0, None))
        self._break_states.append([])
        st = state
        for i in range(4):
            body_in = st.copy()
            if for_node is not None:
                self.assign_target(for_node.target, elem, None, stmt, body_in)
                if isinstance(for_node, ast.AsyncFor):
                    # each __anext__ is an await: an interleaving point at
                    # the top of every iteration
                    self.on_await(stmt, None, body_in)
            elif test is not None:
                body_in = self.refine(body_in, test, True)
            body_out = self.exec_block(body, body_in)
            new = self.join_states(st.copy(), body_out)
            if new.same_as(st):
                break
            st = self._widen_states(st, new) if i >= 2 else new
        breaks = self._break_states.pop()
        exit_state = st
        if test is not None:
            exit_state = self.refine(exit_state, test, False)
        for b in breaks:
            exit_state = self.join_states(exit_state, b)
        if orelse:
            exit_state = self.exec_block(orelse, exit_state)
        return exit_state

    def _exec_with(self, stmt: Union[ast.With, ast.AsyncWith], state: State) -> State:
        is_async = isinstance(stmt, ast.AsyncWith)
        bound: list[str] = []
        for item in stmt.items:
            v = self.eval(item.context_expr, state)
            p: Optional[str] = None
            if item.optional_vars is not None:
                p = path_of(item.optional_vars)
                if p:
                    state.env[p] = v
                    self.on_assign(p, v, stmt, state)
            else:
                p = path_of(item.context_expr)
            if p:
                bound.append(p)
            self.on_with_enter(item, v, p, state)
        if is_async:
            # __aenter__ awaits *before* this frame's context is held
            self.on_await(stmt, None, state)
        frame = _WithFrame(stmt, bound)
        self.frames.append(frame)
        out = self.exec_block(stmt.body, state)
        self.frames.pop()
        if is_async and out.reachable:
            # __aexit__ awaits after the frame's own context is released
            self.on_await(stmt, None, out)
        self.on_with_exit(stmt, out)
        return out

    def _exec_try(self, stmt: ast.Try, state: State) -> State:
        entry = state.copy()
        frame = _TryFrame(stmt)
        self.frames.append(frame)
        body_out = self.exec_block(stmt.body, state)
        self.frames.pop()
        handler_entry = entry
        for rs in frame.raise_states:
            handler_entry = self.join_states(handler_entry, rs)
        handler_entry.reachable = True
        handler_outs: list[State] = []
        for handler in stmt.handlers:
            h = handler_entry.copy()
            h.bounds.clear()
            if handler.name:
                h.env[handler.name] = Value.obj()
            handler_outs.append(self.exec_block(handler.body, h))
        if body_out.reachable and stmt.orelse:
            body_out = self.exec_block(stmt.orelse, body_out)
        out = body_out
        for h in handler_outs:
            out = self.join_states(out, h)
        if stmt.finalbody:
            if out.reachable:
                out = self.exec_block(stmt.finalbody, out)
            else:
                # every path raised/returned: finally still runs
                fstate = handler_entry.copy()
                self.exec_block(stmt.finalbody, fstate)
        return out

    # ------------------------------------------------------------------ joins

    def join_states(self, a: State, b: State) -> State:
        if not a.reachable:
            return b
        if not b.reachable:
            return a
        env: dict[str, Value] = {}
        for k in set(a.env) | set(b.env):
            va = a.env.get(k)
            vb = b.env.get(k)
            if va is None:
                va = self.seed(k)
            if vb is None:
                vb = self.seed(k)
            env[k] = va.join(vb)
        bounds = {
            k: max(a.bounds[k], b.bounds[k]) for k in set(a.bounds) & set(b.bounds)
        }
        res: dict[str, str] = {}
        for k in set(a.res) | set(b.res):
            ra, rb = a.res.get(k), b.res.get(k)
            if ra is None:
                res[k] = rb if rb == "released" else "maybe"  # type: ignore[assignment]
            elif rb is None:
                res[k] = ra if ra == "released" else "maybe"
            else:
                res[k] = _join_res(ra, rb)
        return State(env, bounds, res, True)

    def _widen_states(self, old: State, new: State) -> State:
        env = {}
        for k, v in new.env.items():
            ov = old.env.get(k)
            env[k] = v.with_itv(ov.itv.widen(v.itv)) if ov is not None else v.with_itv(Interval.top())
        return State(env, new.bounds, new.res, new.reachable)

    # ------------------------------------------------------------------ eval

    def _load_path(self, path: str, state: State) -> Value:
        v = state.env.get(path)
        if v is None:
            v = self.seed(path)
            state.env[path] = v
        if v.origin is None:
            v = v.with_origin(("id", path))
        return v

    def eval(self, node: ast.expr, state: State) -> Value:
        if isinstance(node, ast.Constant):
            c = node.value
            if isinstance(c, bool):
                return Value(KIND_BOOL, Interval(int(c), int(c)))
            if isinstance(c, int):
                return Value.pyint(Interval.const(c))
            if isinstance(c, float):
                import math

                return Value.flt(Interval.const(c), finite=math.isfinite(c))
            return Value.obj()
        if isinstance(node, ast.Name):
            return self._load_path(node.id, state)
        if isinstance(node, ast.Attribute):
            base = path_of(node.value)
            if base is not None:
                if node.attr in ("size", "nbytes"):
                    return Value(KIND_PYINT, Interval(0, None), origin=("size", base))
                self.on_attr_load(base, node.attr, node, state)
                return self._load_path(f"{base}.{node.attr}", state)
            self.eval(node.value, state)
            return Value.obj()
        if isinstance(node, ast.Subscript):
            if isinstance(node.slice, ast.Slice):
                sbounds = [
                    self.eval(b, state)
                    for b in (node.slice.lower, node.slice.upper)
                    if b is not None
                ]
                if node.slice.step is not None:
                    self.eval(node.slice.step, state)
                self.check_slice(node, sbounds, state)
            elif isinstance(node.slice, ast.expr):
                idx = self.eval(node.slice, state)
                self.check_index(node, idx, state)
            p = path_of(node)
            if p is not None:
                # Evaluate the base too so attribute-load hooks see it
                # (`shm.buf[0]` must still count as a read of shm.buf).
                self.eval(node.value, state)
                return self._load_path(p, state)
            bv = self.eval(node.value, state)
            # an element of tainted bytes is tainted
            return Value(KIND_OBJ, Interval.top(), tainted=bv.tainted)
        if isinstance(node, ast.UnaryOp):
            v = self.eval(node.operand, state)
            if isinstance(node.op, ast.USub):
                return replace(v, itv=v.itv.neg(), origin=None)
            if isinstance(node.op, ast.Not):
                return Value(KIND_BOOL, Interval(0, 1))
            if isinstance(node.op, ast.UAdd):
                return v
            return Value(v.kind, Interval.top())
        if isinstance(node, ast.BinOp):
            lv = self.eval(node.left, state)
            rv = self.eval(node.right, state)
            return self.binop(node.op, lv, rv, node, state, lpath=path_of(node.left), rpath=path_of(node.right))
        if isinstance(node, ast.BoolOp):
            out = self.eval(node.values[0], state)
            for v in node.values[1:]:
                out = out.join(self.eval(v, state))
            return out
        if isinstance(node, ast.Compare):
            self.eval(node.left, state)
            for c in node.comparators:
                self.eval(c, state)
            return Value(KIND_BOOL, Interval(0, 1))
        if isinstance(node, ast.IfExp):
            t = self.eval(node.body, self.refine(state.copy(), node.test, True))
            f = self.eval(node.orelse, self.refine(state.copy(), node.test, False))
            return t.join(f)
        if isinstance(node, ast.Call):
            return self.eval_call(node, state)
        if isinstance(node, ast.Await):
            inner = node.value
            if isinstance(inner, ast.Call):
                self._awaited_calls.add(id(inner))
            v = self.eval(inner, state)
            self.on_await(node, v, state)
            return v
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for e in node.elts:
                self.eval(e, state)
            return Value.obj()
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self.eval(k, state)
            for v in node.values:
                self.eval(v, state)
            return Value.obj()
        if isinstance(node, ast.Starred):
            return self.eval(node.value, state)
        return Value.obj()

    # ------------------------------------------------------------------ binop

    _CHECKED_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.LShift)

    def binop(
        self,
        op: ast.operator,
        lv: Value,
        rv: Value,
        node: ast.AST,
        state: State,
        lpath: Optional[str] = None,
        rpath: Optional[str] = None,
    ) -> Value:
        kind = _join_kind(lv.kind, rv.kind)
        if isinstance(op, ast.Div):
            kind = KIND_FLOAT if kind in (KIND_PYINT, KIND_I64, KIND_FLOAT, KIND_BOOL) else KIND_OBJ
        itv = self._binop_itv(op, lv.itv, rv.itv)
        # a previously proved |a ± b| bound overrides the raw interval
        if isinstance(op, (ast.Add, ast.Sub)) and lpath and rpath:
            key = tuple(sorted((lpath, rpath)))
            bound = state.bounds.get(key)  # type: ignore[arg-type]
            if bound is not None:
                itv = Interval(-bound, bound)
        quantized = (lv.quantized or rv.quantized) and kind in (KIND_I64, KIND_PYINT)
        if kind == KIND_I64 and isinstance(op, self._CHECKED_OPS):
            self.check_int_arith(node, type(op).__name__, lv, rv, itv, state)
            if not itv.fits_int64():
                itv = Interval.top()  # the concrete op wraps
        origin = self._abssum_origin(op, lv, rv, lpath, rpath)
        return Value(
            kind=kind,
            itv=itv,
            quantized=quantized,
            origin=origin,
            tainted=lv.tainted or rv.tainted,
        )

    @staticmethod
    def _abssum_origin(
        op: ast.operator, lv: Value, rv: Value, lpath: Optional[str], rpath: Optional[str]
    ) -> Optional[tuple[str, ...]]:
        if not isinstance(op, ast.Add):
            return None
        lo, ro = lv.origin, rv.origin
        if lo and lo[0] == "absmax" and ro and ro[0] in ("abs", "absmax"):
            return ("abssum", lo[1], ro[1])
        if ro and ro[0] == "absmax" and lo and lo[0] in ("abs", "absmax"):
            return ("abssum", ro[1], lo[1])
        return None

    @staticmethod
    def _binop_itv(op: ast.operator, a: Interval, b: Interval) -> Interval:
        if isinstance(op, ast.Add):
            return a.add(b)
        if isinstance(op, ast.Sub):
            return a.sub(b)
        if isinstance(op, ast.Mult):
            return a.mul(b)
        if isinstance(op, (ast.Pow, ast.LShift)):
            if (
                a.lo is not None
                and a.lo == a.hi
                and b.lo is not None
                and b.lo == b.hi
                and isinstance(a.lo, int)
                and isinstance(b.lo, int)
                and 0 <= b.lo <= 128
            ):
                v = a.lo**b.lo if isinstance(op, ast.Pow) else a.lo << b.lo
                return Interval.const(v)
            return Interval.top()
        if isinstance(op, ast.Mod):
            if b.lo is not None and b.lo == b.hi and isinstance(b.lo, int) and b.lo > 0:
                return Interval(0, b.lo - 1)
            return Interval.top()
        return Interval.top()

    # ------------------------------------------------------------------ calls

    def eval_call(self, node: ast.Call, state: State) -> Value:
        fp = path_of(node.func)
        args = [self.eval(a, state) for a in node.args]
        kwargs = {k.arg: self.eval(k.value, state) for k in node.keywords if k.arg is not None}
        for k in node.keywords:
            if k.arg is None:
                self.eval(k.value, state)
        result = self._eval_known_call(node, fp, args, kwargs, state)
        hooked = self.on_call(node, fp, args, kwargs, state)
        if hooked is not None:
            return hooked
        return result

    def _eval_known_call(
        self,
        node: ast.Call,
        fp: Optional[str],
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Value:
        if fp is None:
            if isinstance(node.func, ast.Attribute):
                # method call on a computed receiver, e.g. np.abs(x).max()
                recv = self.eval(node.func.value, state)
                handled = self._eval_method_call(
                    node, recv, None, node.func.attr, args, kwargs, state
                )
                if handled is not None:
                    return handled
            self._havoc_args(node, state)
            return Value.obj()
        root = fp.split(".", 1)[0]
        leaf = fp.rsplit(".", 1)[-1]

        # ---- builtins -------------------------------------------------
        if fp == "int" and args:
            a = args[0]
            return Value(
                KIND_PYINT,
                a.itv,
                quantized=a.quantized,
                origin=a.origin or self._arg_id(node, 0),
                tainted=a.tainted,
            )
        if fp == "float" and args:
            a = args[0]
            finite = a.kind in (KIND_PYINT, KIND_I64, KIND_BOOL) or a.finite
            return Value(KIND_FLOAT, a.itv, quantized=a.quantized, finite=finite, origin=a.origin, tainted=a.tainted)
        if fp == "abs" and args:
            a = args[0]
            origin = None
            # prefer the syntactic argument path: bound facts are keyed by
            # the paths at the use site, not by where the value came from
            src = self._arg_id(node, 0) or a.origin
            if src and src[0] == "id":
                origin = ("abs", src[1])
            return Value(a.kind if a.kind != KIND_BOOL else KIND_PYINT, a.itv.abs(), quantized=a.quantized, origin=origin, tainted=a.tainted)
        if fp == "len" and node.args:
            p = path_of(node.args[0])
            return Value(KIND_PYINT, Interval(0, None), origin=("size", p) if p else None)
        if fp == "bool":
            return Value(KIND_BOOL, Interval(0, 1))
        if fp in ("min", "max") and args:
            out = args[0]
            for a in args[1:]:
                out = out.join(a)
            return out.with_origin(None)
        if fp in ("range", "enumerate", "zip", "sorted", "list", "tuple", "dict", "set", "isinstance", "print", "repr", "str", "format", "getattr", "hasattr"):
            return Value.obj()

        # ---- struct: unpacking tainted bytes yields tainted numbers ---
        if root == "struct" and leaf in ("unpack", "unpack_from"):
            tainted = any(a.tainted for a in args) or any(
                v.tainted for v in kwargs.values()
            )
            return Value(KIND_OBJ, Interval.top(), tainted=tainted)

        # ---- numpy / math --------------------------------------------
        if root in _NUMPY_ROOTS:
            return self._eval_numpy_call(node, leaf, args, kwargs, state)
        if root == "math":
            if leaf == "isfinite" and node.args:
                p = path_of(node.args[0])
                return Value(KIND_BOOL, Interval(0, 1), origin=("allfinite", p) if p else None)
            return Value(KIND_FLOAT, Interval.top())

        # ---- method calls on pathed receivers ------------------------
        if isinstance(node.func, ast.Attribute):
            recv_node = node.func.value
            recv_path = path_of(recv_node)
            meth = node.func.attr
            recv = self.eval(recv_node, state) if recv_path is None else self._load_path(recv_path, state)
            handled = self._eval_method_call(node, recv, recv_path, meth, args, kwargs, state)
            if handled is not None:
                return handled

        # ---- module-local functions and constructors ------------------
        callee = self._resolve_local(fp)
        if callee is not None:
            rec = self.call_args.setdefault(callee.qualname, [])
            rec.append((args, kwargs))
            self._havoc_args(node, state)
            summary = self.summaries.get(callee.qualname)
            return summary if summary is not None else Value.obj()
        cname = leaf if (leaf in self.ctx.classes or leaf in self.CTOR_NAMES) else None
        if cname is not None:
            self._havoc_args(node, state)
            return Value.obj(ctor=cname)

        # ---- unknown --------------------------------------------------
        self._havoc_args(node, state)
        return Value.obj()

    @staticmethod
    def _arg_id(node: ast.Call, i: int) -> Optional[tuple[str, ...]]:
        if i < len(node.args):
            p = path_of(node.args[i])
            if p:
                return ("id", p)
        return None

    def _eval_numpy_call(
        self,
        node: ast.Call,
        leaf: str,
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Value:
        a0 = args[0] if args else Value.obj()
        out: Optional[Value] = None
        if leaf in ("abs", "absolute", "fabs"):
            p = path_of(node.args[0]) if node.args else None
            # opaque input stays opaque: laundering OBJ to FLOAT here would
            # let the cast check fire on values we know nothing about
            kind = a0.kind if a0.kind != KIND_BOOL else KIND_PYINT
            out = Value(kind, a0.itv.abs(), quantized=a0.quantized, finite=a0.finite, origin=("abs", p) if p else None)
        elif leaf in ("asarray", "ascontiguousarray", "array", "copy"):
            kind = a0.kind
            finite = a0.finite
            dt = self._dtype_kw(node)
            if dt is not None:
                if dt == KIND_FLOAT and a0.kind in (KIND_PYINT, KIND_I64, KIND_BOOL):
                    finite = True
                kind = dt
            out = Value(kind if kind != KIND_OBJ else KIND_OBJ, a0.itv, quantized=a0.quantized, finite=finite)
        elif leaf in ("floor", "ceil", "rint", "trunc", "round"):
            out = Value(KIND_FLOAT, a0.itv.expand(1), quantized=a0.quantized, finite=a0.finite)
        elif leaf in ("add", "subtract", "multiply") and len(args) >= 2:
            opmap = {"add": ast.Add(), "subtract": ast.Sub(), "multiply": ast.Mult()}
            out = self.binop(
                opmap[leaf],
                args[0],
                args[1],
                node,
                state,
                lpath=path_of(node.args[0]),
                rpath=path_of(node.args[1]),
            )
        elif leaf == "negative":
            out = replace(a0, itv=a0.itv.neg(), origin=None)
        elif leaf in ("cumsum", "sum", "nansum", "prod"):
            dt = self._dtype_kw(node)
            kind = dt if dt is not None else (a0.kind if a0.kind in (KIND_I64, KIND_FLOAT) else KIND_OBJ)
            out = Value(kind, Interval.top(), quantized=a0.quantized and kind == KIND_I64)
        elif leaf in ("repeat", "tile", "ravel", "reshape", "ndarray_noop"):
            out = replace(a0, origin=None)
        elif leaf in ("empty", "empty_like"):
            dt = self._dtype_kw(node)
            kind = dt if dt is not None else (a0.kind if leaf == "empty_like" else KIND_OBJ)
            # uninitialized contents: element range is ⊥ until written
            out = Value(kind, Interval.bottom())
        elif leaf in ("zeros", "zeros_like", "ones", "ones_like", "full", "full_like"):
            dt = self._dtype_kw(node)
            kind = dt if dt is not None else (a0.kind if leaf.endswith("_like") else KIND_OBJ)
            if leaf.startswith("zeros"):
                itv = Interval.const(0)
            elif leaf.startswith("ones"):
                itv = Interval.const(1)
            else:
                fill = args[1] if len(args) > 1 else kwargs.get("fill_value", Value.obj())
                itv = fill.itv
            out = Value(kind, itv)
        elif leaf == "isfinite" and node.args:
            p = path_of(node.args[0])
            out = Value(KIND_BOOL, Interval(0, 1), origin=("allfinite", p) if p else None)
        elif leaf in ("all", "any"):
            src = a0.origin
            origin = src if leaf == "all" and src and src[0] == "allfinite" else None
            out = Value(KIND_BOOL, Interval(0, 1), origin=origin)
        elif leaf in ("max", "amax", "min", "amin"):
            out = self._reduce_minmax(a0, node.args[0] if node.args else None, leaf.lstrip("a"))
        elif leaf == "where" and len(args) == 3:
            out = args[1].join(args[2])
        elif leaf in ("sqrt", "exp", "log", "mean", "std", "var", "median", "dot", "vdot", "hypot", "spacing", "nextafter", "diff"):
            out = Value(KIND_FLOAT, Interval.top())
        elif leaf in ("int64", "int32", "intp"):
            out = Value(KIND_I64, a0.itv if args else Interval.top(), quantized=a0.quantized)
        elif leaf in ("float64", "float32"):
            out = Value(KIND_FLOAT, a0.itv if args else Interval.top())
        elif leaf in ("errstate", "dtype", "iinfo", "finfo", "seterr"):
            out = Value.obj()
        if out is None:
            out = Value.obj()
        # out= kwarg writes the result through the named array
        out_node = next((k.value for k in node.keywords if k.arg == "out"), None)
        if out_node is not None:
            op = path_of(out_node)
            if op is not None:
                base = op
                cur = state.env.get(base, self.seed(base))
                if isinstance(out_node, ast.Subscript) and not base.endswith("]"):
                    state.env[base] = cur.join(out)
                else:
                    state.env[base] = out
                self.invalidate(base, state)
                self.on_assign(base, out, node, state)
        return out

    def _dtype_kw(self, node: ast.Call) -> Optional[str]:
        for k in node.keywords:
            if k.arg == "dtype":
                return _dtype_kind_of(k.value)
        # positional dtype in np.zeros(n, np.int64) style
        if len(node.args) >= 2:
            return _dtype_kind_of(node.args[1])
        return None

    @staticmethod
    def _reduce_minmax(a0: Value, arg_node: Optional[ast.expr], which: str) -> Value:
        origin = None
        src = a0.origin
        if src and src[0] == "abs":
            origin = ("absmax", src[1]) if which == "max" else None
        elif src and src[0] == "id":
            origin = (which, src[1])
        elif arg_node is not None:
            p = path_of(arg_node)
            if p:
                origin = (which, p)
        return Value(a0.kind if a0.kind in (KIND_I64, KIND_FLOAT, KIND_PYINT) else KIND_OBJ, a0.itv, quantized=a0.quantized, finite=a0.finite, origin=origin)

    def _eval_method_call(
        self,
        node: ast.Call,
        recv: Value,
        recv_path: Optional[str],
        meth: str,
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Optional[Value]:
        if meth in ("max", "min") and not args:
            return self._reduce_minmax(recv, node.func.value if isinstance(node.func, ast.Attribute) else None, meth)
        if meth == "astype" and node.args:
            dst = _dtype_kind_of(node.args[0])
            if dst is None:
                return Value.obj()
            if dst == KIND_I64:
                self.check_cast(node, recv, dst, state)
                return Value(KIND_I64, recv.itv.meet(Interval(-(1 << 63), (1 << 63) - 1)) if recv.kind == KIND_FLOAT else recv.itv, quantized=recv.quantized)
            if dst == KIND_FLOAT:
                finite = recv.finite or recv.kind in (KIND_PYINT, KIND_I64, KIND_BOOL)
                return Value(KIND_FLOAT, recv.itv, quantized=recv.quantized, finite=finite)
            return Value(dst, Interval.top())
        if meth == "copy" and not args:
            return recv.with_origin(None)
        if meth in ("reshape", "ravel", "flatten", "squeeze", "transpose"):
            return recv.with_origin(None)
        if meth == "view" and node.args:
            dst = _dtype_kind_of(node.args[0])
            return Value(dst or KIND_OBJ, Interval.top())
        if meth == "item" and not args:
            kind = KIND_PYINT if recv.kind == KIND_I64 else recv.kind
            return Value(kind, recv.itv, quantized=recv.quantized, finite=recv.finite)
        if meth == "sum":
            dt = self._dtype_kw(node)
            kind = dt if dt else (recv.kind if recv.kind in (KIND_I64, KIND_FLOAT) else KIND_OBJ)
            return Value(kind, Interval.top(), quantized=recv.quantized and kind == KIND_I64)
        if meth in ("mean", "std", "var"):
            return Value(KIND_FLOAT, Interval.top())
        if meth in ("any", "all"):
            return Value(KIND_BOOL, Interval(0, 1))
        if meth == "fill" and recv_path and args:
            state.env[recv_path] = replace(args[0], quantized=recv.quantized or args[0].quantized)
            self.invalidate(recv_path, state)
            return Value.obj()
        # self.<method> → module-local method of the current class
        if recv_path == "self" and self.current is not None and self.current.class_name:
            qn = f"{self.current.class_name}.{meth}"
            callee = self.ctx.functions.get(qn)
            if callee is not None:
                self.call_args.setdefault(qn, []).append((args, kwargs))
                self._havoc_args(node, state)
                summary = self.summaries.get(qn)
                return summary if summary is not None else Value.obj()
        # ctor-typed receiver → method of that module-local class
        # (`r = _Reader(buf); r.u16(...)` resolves to `_Reader.u16`)
        if recv.ctor is not None and recv_path != "self":
            qn = f"{recv.ctor}.{meth}"
            callee = self.ctx.functions.get(qn)
            if callee is not None:
                self.call_args.setdefault(qn, []).append((args, kwargs))
                self._havoc_args(node, state)
                summary = self.summaries.get(qn)
                return summary if summary is not None else Value.obj()
        return None

    def _resolve_local(self, fp: str) -> Optional[FuncInfo]:
        if "." in fp:
            return None
        return self.ctx.functions.get(fp)

    def _havoc_args(self, node: ast.Call, state: State) -> None:
        """Unknown callee may mutate its arguments: retire derived bindings."""
        for arg in list(node.args) + [k.value for k in node.keywords]:
            p = path_of(arg)
            if p is None:
                continue
            v = state.env.get(p)
            if v is not None and v.kind in (KIND_I64, KIND_FLOAT):
                # mutable array contents may have changed: reseed by name
                state.env.pop(p, None)
            for k in [k for k in state.env if k.startswith(p + ".") or k.startswith(p + "[")]:
                del state.env[k]
            self.invalidate(p, state)

    # ------------------------------------------------------------------ refine

    def refine(self, state: State, test: ast.expr, branch: bool) -> State:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self.refine(state, test.operand, not branch)
        if isinstance(test, ast.BoolOp):
            is_and = isinstance(test.op, ast.And)
            if is_and == branch:
                # all conjuncts true (And-true) / all disjuncts false (Or-false)
                for v in test.values:
                    state = self.refine(state, v, branch)
                return state
            # De Morgan split: join the per-operand early exits
            outs: list[State] = []
            cur = state
            for v in test.values:
                outs.append(self.refine(cur.copy(), v, branch))
                cur = self.refine(cur, v, not branch)
            out = outs[0]
            for o in outs[1:]:
                out = self.join_states(out, o)
            return out
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            return self._refine_compare(state, test, branch)
        # bare truthiness
        v = self.eval(test, state.copy())
        p = path_of(test)
        if v.origin and v.origin[0] == "size":
            base = v.origin[1]
            bv = state.env.get(base, self.seed(base))
            if not branch:
                state.env[base] = bv.with_itv(Interval.bottom())
            return state
        if v.origin and v.origin[0] == "allfinite" and branch:
            base = v.origin[1]
            bv = state.env.get(base, self.seed(base))
            state.env[base] = replace(bv, finite=True)
            return state
        if p and not branch and v.kind in (KIND_PYINT, KIND_I64):
            pv = state.env.get(p, self.seed(p))
            state.env[p] = pv.with_itv(pv.itv.meet(Interval.const(0)))
        return state

    def _refine_compare(self, state: State, test: ast.Compare, branch: bool) -> State:
        op = test.ops[0]
        left, right = test.left, test.comparators[0]
        lv = self.eval(left, state.copy())
        rv = self.eval(right, state.copy())
        if isinstance(op, (ast.In, ast.NotIn)):
            # membership in a known table is a validation fact
            if branch == isinstance(op, ast.In):
                self._clear_taint(state, left)
            return state
        lc = self._const_of(lv)
        rc = self._const_of(rv)
        if rc is not None and lc is None:
            self._refine_against_const(state, left, lv, op, rc, branch, mirrored=False)
        elif lc is not None and rc is None:
            self._refine_against_const(state, right, rv, op, lc, branch, mirrored=True)
        else:
            # No interval information without a constant side, but an
            # upper-bound comparison against *anything* (`n <= max_frame`,
            # `pos + n > len(buf)` on the false edge) still counts as a
            # bounds check: the guarded side stops being tainted.
            opname = type(op).__name__
            if not branch:
                opname = {"Lt": "GtE", "LtE": "Gt", "Gt": "LtE", "GtE": "Lt"}.get(opname, "skip")
            if opname in ("Lt", "LtE"):
                self._clear_taint(state, left)
            elif opname in ("Gt", "GtE"):
                self._clear_taint(state, right)
        return state

    def _clear_taint(self, state: State, node: ast.expr) -> None:
        """Clear the taint bit on every pathed load inside ``node``."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Name, ast.Attribute, ast.Subscript)):
                p = path_of(sub)
                if p is None:
                    continue
                v = state.env.get(p)
                if v is not None and v.tainted:
                    state.env[p] = v.with_tainted(False)

    @staticmethod
    def _const_of(v: Value) -> Optional[float]:
        if not v.itv.empty and v.itv.lo is not None and v.itv.lo == v.itv.hi:
            return v.itv.lo
        return None

    def _refine_against_const(
        self,
        state: State,
        node: ast.expr,
        val: Value,
        op: ast.cmpop,
        c: float,
        branch: bool,
        mirrored: bool,
    ) -> None:
        # normalize to  expr <op> c  on the True branch
        opname = type(op).__name__
        if mirrored:
            opname = {"Lt": "Gt", "LtE": "GtE", "Gt": "Lt", "GtE": "LtE"}.get(opname, opname)
        if not branch:
            opname = {"Lt": "GtE", "LtE": "Gt", "Gt": "LtE", "GtE": "Lt", "Eq": "NotEq", "NotEq": "Eq"}.get(opname, "skip")
        is_int = val.kind in (KIND_PYINT, KIND_I64)
        step = 1 if is_int and isinstance(c, int) else 0
        if opname == "Lt":
            upper: Interval = Interval(None, c - step)
        elif opname == "LtE":
            upper = Interval(None, c)
        elif opname == "Gt":
            upper = Interval(c + step, None)
        elif opname == "GtE":
            upper = Interval(c, None)
        elif opname == "Eq":
            upper = Interval.const(c)
        else:
            return
        # 1) narrow the compared l-value itself
        p = path_of(node)
        if p:
            pv = state.env.get(p, self.seed(p))
            pv = pv.with_itv(pv.itv.meet(upper))
            if opname in ("Lt", "LtE", "Eq") and pv.tainted:
                # a finite upper bound is a bounds-check guard fact
                pv = pv.with_tainted(False)
            state.env[p] = pv
        elif opname in ("Lt", "LtE", "Eq"):
            # compound left side (`pos + n < limit`): no single binding to
            # narrow, but the upper bound still sanitizes its operands
            self._clear_taint(state, node)
        # 2) origin-directed effects
        origin = val.origin
        if origin is None:
            return
        tag = origin[0]
        if tag in ("abs", "absmax") and opname in ("Lt", "LtE"):
            bound = upper.hi
            if bound is not None:
                base = origin[1]
                bv = state.env.get(base, self.seed(base))
                state.env[base] = bv.with_itv(bv.itv.meet(Interval(-bound, bound)))
        elif tag == "abssum" and opname in ("Lt", "LtE"):
            bound = upper.hi
            if bound is not None and isinstance(bound, int):
                key = tuple(sorted((origin[1], origin[2])))
                prev = state.bounds.get(key)  # type: ignore[arg-type]
                state.bounds[key] = bound if prev is None else min(prev, bound)  # type: ignore[index]
        elif tag == "max" and opname in ("Lt", "LtE"):
            base = origin[1]
            bv = state.env.get(base, self.seed(base))
            state.env[base] = bv.with_itv(bv.itv.meet(Interval(None, upper.hi)))
        elif tag == "min" and opname in ("Gt", "GtE"):
            base = origin[1]
            bv = state.env.get(base, self.seed(base))
            state.env[base] = bv.with_itv(bv.itv.meet(Interval(upper.lo, None)))
        elif tag == "size" and opname == "Eq" and c == 0:
            base = origin[1]
            bv = state.env.get(base, self.seed(base))
            state.env[base] = bv.with_itv(Interval.bottom())


# ---------------------------------------------------------------------------
# module driver: two analysis rounds with call summaries
# ---------------------------------------------------------------------------


def analyze_module(
    source_path: str,
    tree: ast.Module,
    make_interp: Callable[[ModuleContext, Mapping[str, Value]], Interpreter],
    ctx: Optional[ModuleContext] = None,
) -> tuple[list[Finding], dict[str, FunctionResult]]:
    """Run a pass over every function with two-round call summaries.

    Round 1 analyzes each function with name-based seeds, collecting
    return summaries and observed call-site arguments.  Round 2
    re-analyzes everything with the full summary table, refining private
    functions' parameters to the join of their observed arguments.
    Findings are taken from round 2 only.

    ``ctx`` lets the driver share one :class:`ModuleContext` (and the
    parse it indexes) across every pass over the same file; the context
    is read-only during analysis.
    """
    if ctx is None:
        ctx = ModuleContext.build(source_path, tree)
    summaries: dict[str, Value] = {}
    observed: dict[str, list[tuple[list[Value], dict[str, Value]]]] = {}
    for qn, fn in ctx.functions.items():
        interp = make_interp(ctx, summaries)
        res = interp.run(fn)
        summaries[qn] = res.return_value
        for callee, calls in res.call_args.items():
            observed.setdefault(callee, []).extend(calls)

    findings: list[Finding] = []
    results: dict[str, FunctionResult] = {}
    for qn, fn in ctx.functions.items():
        params = _observed_params(fn, observed.get(qn)) if fn.is_internal else None
        interp = make_interp(ctx, summaries)
        res = interp.run(fn, params=params)
        findings.extend(res.findings)
        results[qn] = res
    return findings, results


def _observed_params(
    fn: FuncInfo, calls: Optional[list[tuple[list[Value], dict[str, Value]]]]
) -> Optional[dict[str, Value]]:
    if not calls:
        return None
    argnames = [a.arg for a in fn.node.args.posonlyargs + fn.node.args.args]
    if argnames and argnames[0] == "self":
        argnames = argnames[1:]
    joined: dict[str, Value] = {}
    complete: dict[str, bool] = {}
    for args, kwargs in calls:
        seen: dict[str, Value] = {}
        for i, v in enumerate(args):
            if i < len(argnames):
                seen[argnames[i]] = v
        seen.update({k: v for k, v in kwargs.items() if k in argnames})
        for name in argnames:
            if name in seen:
                if name in joined:
                    joined[name] = joined[name].join(seen[name])
                else:
                    joined[name] = seen[name]
                complete.setdefault(name, True)
            else:
                complete[name] = False
    # only refine parameters observed at every call site
    return {k: v for k, v in joined.items() if complete.get(k)} or None
