"""Per-function abstract interpreter with call summaries.

The engine executes a function's AST over the lattices in
:mod:`~repro.analysis.dataflow.lattice`:

* an **environment** maps canonical access paths (``"q"``,
  ``"out.outliers"``, ``"arrays['q']"``) to abstract :class:`Value`\\ s;
* **branch refinement** narrows the environment on ``if``/``while``/
  ``assert`` edges, understanding the repo's guard idioms — ``x.size``
  truthiness, ``np.all(np.isfinite(x))``, ``np.abs(x).max() >= bound``,
  and the ``peak = |x|.max() + |y|`` / ``if peak >= Q_LIMIT: raise``
  shape, which records a *bound fact* proving ``x ± y`` stays in range;
* **raise pruning**: a branch that ends in ``raise`` contributes nothing
  to the join after the ``if``;
* **loops** run to a small fixpoint with interval widening;
* ``try``/``with`` maintain a protection stack that lifetime passes
  (shm) query, and handler entry states join every in-body raise point;
* **call summaries**: module-local functions are analyzed first with
  name-based seeds; a second pass re-analyzes private functions with the
  join of their observed call-site arguments and gives every caller the
  callee's return summary.

Passes subclass :class:`Interpreter` and override the ``check_*`` /
``on_*`` hooks; the engine itself emits no findings.

Known soundness caveats (documented in ``docs/ANALYSIS.md``): NumPy view
aliasing is only identity-tracked (the :class:`ArrayInfo` layer records
which buffer a view derives from for the NPA rules, but writes through a
view still do not update the base array's *element interval* — summary
returns widen bottom intervals to ⊤ to compensate), comprehension bodies
are opaque, and reseeding a havocked quantized name assumes callees
preserve the ``|q| < Q_LIMIT`` invariant their own analysis verifies.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.analysis.dataflow.lattice import (
    INIT_NO,
    INIT_YES,
    KIND_BOOL,
    KIND_FLOAT,
    KIND_I64,
    KIND_OBJ,
    KIND_PYINT,
    Q_LIMIT,
    ArrayInfo,
    Interval,
    Value,
    _join_kind,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules.numeric import QUANTIZED_NAMES

__all__ = [
    "FunctionResult",
    "Interpreter",
    "ModuleContext",
    "State",
    "analyze_module",
    "path_of",
    "terminal_name",
]

_NUMPY_ROOTS = {"np", "numpy"}

#: dtype spellings → value kind ("int" targets trigger the cast check).
_DTYPE_KINDS: dict[str, str] = {}
for _n in ("int64", "int32", "int16", "int8", "intp", "uint64", "uint32", "uint16", "uint8", "long"):
    _DTYPE_KINDS[_n] = KIND_I64
for _n in ("float64", "float32", "float16", "double", "single", "longdouble"):
    _DTYPE_KINDS[_n] = KIND_FLOAT
for _n in ("bool_", "bool"):
    _DTYPE_KINDS[_n] = KIND_BOOL
_DTYPE_STR_KINDS = {"i": KIND_I64, "u": KIND_I64, "f": KIND_FLOAT, "b": KIND_BOOL}

#: dtype spellings → itemsize in bytes (array-lattice layout facts).
_DTYPE_ITEMSIZE: dict[str, int] = {
    "int64": 8, "uint64": 8, "float64": 8, "double": 8, "intp": 8, "long": 8,
    "int32": 4, "uint32": 4, "float32": 4, "single": 4,
    "int16": 2, "uint16": 2, "float16": 2,
    "int8": 1, "uint8": 1, "bool_": 1, "bool": 1,
}

#: signed/unsigned integer dtypes → value range (NPA006 narrowing check).
INT_DTYPE_RANGES: dict[str, tuple[int, int]] = {}
for _b in (8, 16, 32, 64):
    INT_DTYPE_RANGES[f"int{_b}"] = (-(1 << (_b - 1)), (1 << (_b - 1)) - 1)
    INT_DTYPE_RANGES[f"uint{_b}"] = (0, (1 << _b) - 1)
INT_DTYPE_RANGES["intp"] = INT_DTYPE_RANGES["long"] = INT_DTYPE_RANGES["int64"]


def dtype_info_of(node: ast.expr) -> Optional[tuple[str, Optional[int], str]]:
    """``(name, itemsize, kind)`` of a dtype expression, or ``None``.

    Handles ``np.uint8`` / bare names / ``"<u2"``-style strings.  The
    itemsize is ``None`` for spellings whose width is unknown.
    """
    name: Optional[str] = None
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        s = node.value.lstrip("<>=|")
        if not s or s[:1] not in _DTYPE_STR_KINDS:
            return None
        kind = _DTYPE_STR_KINDS[s[:1]]
        try:
            width = int(s[1:]) if len(s) > 1 else None
        except ValueError:
            return None
        canon = {"i": "int", "u": "uint", "f": "float", "b": "bool"}[s[:1]]
        if width is None:
            return (canon, None, kind)
        return (f"{canon}{width * 8}", width, kind)
    if name is None or name not in _DTYPE_KINDS:
        return None
    return (name, _DTYPE_ITEMSIZE.get(name), _DTYPE_KINDS[name])


def path_of(node: ast.AST) -> Optional[str]:
    """Canonical access path of an l-value-shaped expression, or None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = path_of(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Subscript):
        base = path_of(node.value)
        if base is None:
            return None
        if isinstance(node.slice, ast.Constant) and isinstance(node.slice.value, str):
            return f"{base}[{node.slice.value!r}]"
        # positional/slice indexing shares the base array's element range
        return base
    if isinstance(node, ast.Call):
        return None
    return None


def _has_slice(node: ast.expr) -> bool:
    """True when a subscript's slice expression contains a ``:`` slice."""
    if isinstance(node, ast.Slice):
        return True
    if isinstance(node, ast.Tuple):
        return any(isinstance(e, ast.Slice) for e in node.elts)
    return False


def terminal_name(path: str) -> str:
    """Last meaningful component of a canonical path."""
    if path.endswith("]"):
        key = path[path.rfind("[") + 1 : -1]
        return key.strip("'\"")
    return path.rsplit(".", 1)[-1]


def _dtype_kind_of(node: ast.expr) -> Optional[str]:
    """Value kind named by a dtype expression (np.int64, "<i8", ...)."""
    if isinstance(node, ast.Attribute):
        return _DTYPE_KINDS.get(node.attr)
    if isinstance(node, ast.Name):
        return _DTYPE_KINDS.get(node.id)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        s = node.value.lstrip("<>=|")
        return _DTYPE_STR_KINDS.get(s[:1]) if s else None
    return None


def _annotation_ctor(ann: ast.expr) -> Optional[str]:
    """Class name an attribute annotation types it as, or ``None``.

    Understands ``X``, ``mod.X``, ``X | None`` / ``None | X`` and
    ``Optional[X]``; builtin scalar annotations are handled separately
    through ``class_field_kind``.
    """
    if isinstance(ann, ast.Name):
        return None if ann.id in ("int", "float", "bool", "str", "bytes", "None") else ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _annotation_ctor(ann.left) or _annotation_ctor(ann.right)
    if isinstance(ann, ast.Subscript):
        base = ann.value
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if name == "Optional" and isinstance(ann.slice, ast.expr):
            return _annotation_ctor(ann.slice)
        return None
    if isinstance(ann, ast.Constant) and ann.value is None:
        return None
    return None


# ---------------------------------------------------------------------------
# module context: function / class indexes shared by every pass
# ---------------------------------------------------------------------------


#: Either flavour of function definition: the engine analyzes both, and
#: the async-safety passes key on which one they are in.
FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FuncInfo:
    qualname: str
    node: FuncNode
    class_name: Optional[str] = None

    @property
    def is_private(self) -> bool:
        return self.node.name.startswith("_") and not self.node.name.startswith("__")

    @property
    def is_internal(self) -> bool:
        """Private function, or any method of a module-private class.

        Every call site of an internal function is visible in this
        module, so round 2 may refine its parameters to the join of the
        observed arguments (`_Reader.u16` sees the real wire taint).
        """
        return self.is_private or (
            self.class_name is not None
            and self.class_name.startswith("_")
            and not self.node.name.startswith("__")
        )

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


@dataclass
class ModuleContext:
    """Indexes over one module: functions, classes, ctor-typed attributes."""

    path: str
    tree: ast.Module
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: class → method name → set of ``self.<attr>`` lock attrs it acquires
    #: (filled lazily by the lock pass; here for cross-pass sharing)
    class_attr_ctor: dict[str, dict[str, str]] = field(default_factory=dict)
    class_field_kind: dict[str, dict[str, str]] = field(default_factory=dict)
    #: memo space for per-module derived indexes (keyed by pass name);
    #: passes that instantiate one interpreter per function use this to
    #: avoid re-walking the module AST for every instance
    pass_cache: dict[str, object] = field(default_factory=dict)

    @staticmethod
    def build(path: str, tree: ast.Module) -> "ModuleContext":
        ctx = ModuleContext(path=path, tree=tree)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ctx.functions[node.name] = FuncInfo(node.name, node)
            elif isinstance(node, ast.ClassDef):
                ctx.classes[node.name] = node
                ctors: dict[str, str] = {}
                kinds: dict[str, str] = {}
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qn = f"{node.name}.{item.name}"
                        ctx.functions[qn] = FuncInfo(qn, item, class_name=node.name)
                    elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                        ann = item.annotation
                        if isinstance(ann, ast.Name):
                            if ann.id == "int":
                                kinds[item.target.id] = KIND_PYINT
                            elif ann.id == "float":
                                kinds[item.target.id] = KIND_FLOAT
                init = next(
                    (i for i in node.body if isinstance(i, ast.FunctionDef) and i.name == "__init__"),
                    None,
                )
                if init is not None:
                    for stmt in ast.walk(init):
                        if (
                            isinstance(stmt, ast.Assign)
                            and len(stmt.targets) == 1
                            and isinstance(stmt.targets[0], ast.Attribute)
                            and isinstance(stmt.targets[0].value, ast.Name)
                            and stmt.targets[0].value.id == "self"
                            and isinstance(stmt.value, ast.Call)
                        ):
                            fn = stmt.value.func
                            cname = fn.id if isinstance(fn, ast.Name) else (
                                fn.attr if isinstance(fn, ast.Attribute) else None
                            )
                            if cname:
                                ctors[stmt.targets[0].attr] = cname
                        elif (
                            isinstance(stmt, ast.AnnAssign)
                            and isinstance(stmt.target, ast.Attribute)
                            and isinstance(stmt.target.value, ast.Name)
                            and stmt.target.value.id == "self"
                        ):
                            # `self.backend: ExecutionBackend | None = ...`
                            # types the attribute even when the assigned
                            # expression is conditional
                            cname = _annotation_ctor(stmt.annotation)
                            if cname and stmt.target.attr not in ctors:
                                ctors[stmt.target.attr] = cname
                ctx.class_attr_ctor[node.name] = ctors
                ctx.class_field_kind[node.name] = kinds
        return ctx


# ---------------------------------------------------------------------------
# abstract state
# ---------------------------------------------------------------------------


@dataclass
class State:
    env: dict[str, Value] = field(default_factory=dict)
    #: proved |a ± b| bounds, keyed by the sorted path pair
    bounds: dict[tuple[str, str], int] = field(default_factory=dict)
    #: generic per-pass resource states (shm lifetime): path → state str
    res: dict[str, str] = field(default_factory=dict)
    reachable: bool = True

    def copy(self) -> "State":
        return State(dict(self.env), dict(self.bounds), dict(self.res), self.reachable)

    def same_as(self, other: "State") -> bool:
        return (
            self.reachable == other.reachable
            and self.env == other.env
            and self.bounds == other.bounds
            and self.res == other.res
        )


def _join_res(a: str, b: str) -> str:
    if a == b:
        return a
    open_ish = {"open", "maybe"}
    if a in open_ish or b in open_ish:
        return "maybe"
    return "maybe"


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------


@dataclass
class FunctionResult:
    return_value: Value
    findings: list[Finding]
    call_args: dict[str, list[tuple[list[Value], dict[str, Value]]]]
    end_state: State


class _TryFrame:
    __slots__ = ("node", "raise_states")

    def __init__(self, node: ast.Try) -> None:
        self.node = node
        self.raise_states: list[State] = []


class _WithFrame:
    __slots__ = ("node", "bound", "is_async")

    def __init__(self, node: Union[ast.With, ast.AsyncWith], bound: list[str]) -> None:
        self.node = node
        self.bound = bound
        self.is_async = isinstance(node, ast.AsyncWith)


class Interpreter:
    """Abstract interpreter for one function.  Subclass to add checks."""

    #: extra names treated as known constructors (pass-specific typing)
    CTOR_NAMES: frozenset[str] = frozenset()

    def __init__(
        self,
        ctx: ModuleContext,
        summaries: Optional[Mapping[str, Value]] = None,
        source_path: str = "<module>",
    ) -> None:
        self.ctx = ctx
        self.summaries = dict(summaries or {})
        self.source_path = source_path
        self.findings: list[Finding] = []
        self.call_args: dict[str, list[tuple[list[Value], dict[str, Value]]]] = {}
        self.frames: list[object] = []
        self.current: Optional[FuncInfo] = None
        self._break_states: list[list[State]] = []
        self._returns: list[Value] = []
        self._reported_sites: set[tuple[str, int, int]] = set()
        #: ids of Call nodes that are the direct operand of an ``await``
        #: (so ``on_call`` can tell an awaited call from a bare one)
        self._awaited_calls: set[int] = set()

    #: Array-lattice tracking is pay-for-what-you-use: only the NPA pass
    #: flips this on.  With it off, allocations carry no :class:`ArrayInfo`
    #: and every downstream arr join/hook short-circuits on ``None``, so
    #: the other passes keep their pre-array cost profile.
    track_arrays: bool = False

    def _fresh_arr(self, **kwargs: Any) -> Optional[ArrayInfo]:
        return ArrayInfo(**kwargs) if self.track_arrays else None

    # ------------------------------------------------------------------ hooks

    def seed(self, path: str) -> Value:
        """Abstract value assumed for a never-assigned load of ``path``."""
        name = terminal_name(path)
        if name == "Q_LIMIT":
            return Value.pyint(Interval.const(Q_LIMIT))
        if name in QUANTIZED_NAMES:
            return Value.quantized_plane()
        if self.current is not None and self.current.class_name and path.startswith("self."):
            attr = path.split(".", 1)[1]
            cls = self.current.class_name
            ctor = self.ctx.class_attr_ctor.get(cls, {}).get(attr)
            if ctor:
                return Value.obj(ctor=ctor)
            kind = self.ctx.class_field_kind.get(cls, {}).get(attr)
            if kind:
                return Value(kind)
        return Value.obj()

    def check_int_arith(
        self,
        node: ast.AST,
        opname: str,
        lv: Value,
        rv: Value,
        itv: Interval,
        state: State,
    ) -> None:
        """Called for int64 Add/Sub/Mult/Pow/LShift results (ranges pass)."""

    def check_cast(self, node: ast.AST, src: Value, dst_kind: str, state: State) -> None:
        """Called for every ``.astype(dtype)`` (ranges pass)."""

    def on_call(
        self,
        node: ast.Call,
        func_path: Optional[str],
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Optional[Value]:
        """Observe every call after evaluation; return a Value to override."""
        return None

    def on_assign(self, path: str, value: Value, node: ast.AST, state: State) -> None:
        """Observe every strong store to a path."""

    def on_attr_load(self, base_path: str, attr: str, node: ast.AST, state: State) -> None:
        """Observe attribute loads whose base has a canonical path."""

    def on_possible_raise(self, stmt: ast.stmt, state: State) -> None:
        """Called before each simple statement that may raise."""

    def on_return(self, stmt: ast.Return, value: Optional[Value], state: State) -> None:
        """Called at each return, after pending finallys ran."""

    def on_function_end(self, state: State) -> None:
        """Called on the fall-off-the-end state (if reachable)."""

    def on_with_enter(self, item: ast.withitem, value: Value, path: Optional[str], state: State) -> None:
        """Called when a with-item context is entered."""

    def on_with_exit(self, node: Union[ast.With, ast.AsyncWith], state: State) -> None:
        """Called when a with-block exits normally."""

    def on_raise(self, stmt: ast.Raise, state: State) -> None:
        """Called at explicit raise statements."""

    def on_await(self, node: ast.AST, value: Optional[Value], state: State) -> None:
        """Called at every await point — an ``await`` expression, an
        ``async with`` enter/exit, or an ``async for`` iteration step.

        Every await is an interleaving point: any other coroutine on the
        event loop (and, through ``run_in_executor`` hand-offs, any pool
        thread) may run before control returns.  The async-safety passes
        key their atomicity and lock-discipline checks on this hook.
        """

    def check_slice(self, node: ast.Subscript, bounds: list[Value], state: State) -> None:
        """Called for every slice expression with its bound values (taint)."""

    def check_index(self, node: ast.Subscript, index: Value, state: State) -> None:
        """Called for every non-slice subscript with its index value (taint)."""

    def check_array_write(
        self,
        node: ast.AST,
        path: Optional[str],
        target: Value,
        value: Value,
        index: Optional[Value],
        state: State,
    ) -> None:
        """Called for every element store into an array-lattice value.

        Covers subscript assignment/augassignment, ``.fill(...)``, and
        ``out=`` keyword writes.  ``target`` is the array's binding
        *before* the store; ``index`` is the evaluated non-slice index
        (``None`` for slice stores and full-array writes).  The NPA pass
        keys its aliasing/writability/extent/narrowing rules here.
        """

    def check_view_cast(
        self,
        node: ast.AST,
        src: Value,
        dtype_name: str,
        itemsize: Optional[int],
        state: State,
    ) -> None:
        """Called for every ``.view(dtype)`` with a resolvable dtype (NPA002)."""

    def check_astype(
        self,
        node: ast.AST,
        src: Value,
        dtype_name: str,
        itemsize: Optional[int],
        state: State,
    ) -> None:
        """Called for every ``.astype(dtype)`` with a resolvable dtype name.

        Unlike :meth:`check_cast` (int64-kind targets only), this fires
        for every named dtype so narrowing checks see uint8/uint16/...
        """

    def check_array_read(self, node: ast.AST, value: Value, state: State) -> None:
        """Called when array *contents* are read: element loads, numpy
        reductions/ufuncs, ``astype``/``copy``/``byteswap``, and binary
        operator operands.  The NPA pass keys the uninitialized-read
        check (NPA005) here."""

    # ------------------------------------------------------------------ report

    def report(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        hint: str = "",
        severity: Severity = Severity.ERROR,
    ) -> None:
        # loop bodies run to a small fixpoint, re-visiting each node up to
        # four times — report each site once
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (rule, line, col)
        if key in self._reported_sites:
            return
        self._reported_sites.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.source_path,
                line=line,
                message=message,
                hint=hint,
                severity=severity,
            )
        )

    # ------------------------------------------------------------------ driver

    def run(self, fn: FuncInfo, params: Optional[Mapping[str, Value]] = None) -> FunctionResult:
        self.current = fn
        self._returns = []
        state = State()
        argnames = [a.arg for a in fn.node.args.posonlyargs + fn.node.args.args]
        for i, name in enumerate(argnames):
            if i == 0 and name == "self" and fn.class_name:
                state.env["self"] = Value.obj(ctor=fn.class_name)
            elif params is not None and name in params:
                state.env[name] = params[name]
            else:
                state.env[name] = self.seed(name)
        for a in fn.node.args.kwonlyargs:
            state.env[a.arg] = (
                params[a.arg] if params is not None and a.arg in params else self.seed(a.arg)
            )
        end = self.exec_block(fn.node.body, state)
        if end.reachable:
            self.on_function_end(end)
        ret = Value.obj()
        if self._returns:
            ret = self._returns[0]
            for v in self._returns[1:]:
                ret = ret.join(v)
            if ret.itv.empty:
                # widen ⊥ element ranges at the summary boundary: a function
                # whose return was only ever written through views looks
                # uninitialized to us (aliasing caveat)
                ret = ret.with_itv(Interval.top())
        if ret.arr is not None:
            # strip the buffer identity at the summary boundary: two
            # distinct calls of the same function return distinct buffers,
            # so a per-site base id must not alias them to each other
            ret = ret.with_arr(replace(ret.arr, base=None, view=False))
        return FunctionResult(ret, self.findings, self.call_args, end)

    # ------------------------------------------------------------------ stmts

    _SIMPLE = (ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Return, ast.Raise, ast.Assert, ast.Delete)

    def exec_block(self, stmts: Sequence[ast.stmt], state: State) -> State:
        for stmt in stmts:
            if not state.reachable:
                break
            if isinstance(stmt, self._SIMPLE):
                self._note_raise_point(stmt, state)
            state = self.exec_stmt(stmt, state)
        return state

    def _note_raise_point(self, stmt: ast.stmt, state: State) -> None:
        # Awaits may raise even without a call operand (CancelledError,
        # or the awaited task's stored exception).
        may_raise = isinstance(stmt, ast.Raise) or any(
            isinstance(n, (ast.Call, ast.Subscript, ast.Await)) for n in ast.walk(stmt)
        )
        if not may_raise:
            return
        for fr in self.frames:
            if isinstance(fr, _TryFrame):
                fr.raise_states.append(state.copy())
        self.on_possible_raise(stmt, state)

    def exec_stmt(self, stmt: ast.stmt, state: State) -> State:
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, state)
            return state
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, state)
            for target in stmt.targets:
                self.assign_target(target, value, stmt.value, stmt, state)
            return state
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, state)
                self.assign_target(stmt.target, value, stmt.value, stmt, state)
            return state
        if isinstance(stmt, ast.AugAssign):
            return self._exec_augassign(stmt, state)
        if isinstance(stmt, ast.Return):
            return self._exec_return(stmt, state)
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, state)
            self.on_raise(stmt, state)
            state.reachable = False
            return state
        if isinstance(stmt, ast.Assert):
            return self.refine(state, stmt.test, True)
        if isinstance(stmt, ast.If):
            t = self.exec_block(stmt.body, self.refine(state.copy(), stmt.test, True))
            f = self.exec_block(stmt.orelse, self.refine(state.copy(), stmt.test, False))
            return self.join_states(t, f)
        if isinstance(stmt, ast.While):
            return self._exec_loop(stmt, state, test=stmt.test)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._exec_loop(stmt, state, for_node=stmt)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._exec_with(stmt, state)
        if isinstance(stmt, ast.Try):
            return self._exec_try(stmt, state)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            if isinstance(stmt, ast.Break) and self._break_states:
                self._break_states[-1].append(state.copy())
            state.reachable = False
            return state
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state  # nested defs are opaque
        if isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                p = path_of(t)
                if p:
                    state.env.pop(p, None)
                    self.invalidate(p, state)
            return state
        return state

    # ------------------------------------------------------------------ pieces

    def _exec_return(self, stmt: ast.Return, state: State) -> State:
        value = self.eval(stmt.value, state) if stmt.value is not None else None
        # returns run pending finally blocks (inner → outer)
        for fr in reversed(self.frames):
            if isinstance(fr, _TryFrame) and fr.node.finalbody:
                state = self.exec_block(fr.node.finalbody, state)
        self.on_return(stmt, value, state)
        self._returns.append(value if value is not None else Value.obj())
        state.reachable = False
        return state

    def _exec_augassign(self, stmt: ast.AugAssign, state: State) -> State:
        tpath = path_of(stmt.target)
        lv = self._load_path(tpath, state) if tpath else Value.obj()
        rv = self.eval(stmt.value, state)
        rpath = path_of(stmt.value)
        result = self.binop(stmt.op, lv, rv, stmt, state, lpath=tpath, rpath=rpath)
        if tpath:
            if isinstance(stmt.target, ast.Subscript) and not tpath.endswith("]"):
                idx_v: Optional[Value] = None
                if isinstance(stmt.target.slice, ast.expr):
                    sv = self.eval(stmt.target.slice, state)
                    if not _has_slice(stmt.target.slice):
                        idx_v = sv
                cur = state.env.get(tpath, self.seed(tpath))
                # the aliasing check sees the RHS operand, not the binop
                # result (`a[i] += b` reads b, not a ⊕ b)
                self.check_array_write(stmt, tpath, cur, rv, idx_v, state)
                state.env[tpath] = self._element_store(cur, result)
            else:
                state.env[tpath] = result
            self.invalidate(tpath, state)
            self.on_assign(tpath, result, stmt, state)
        return state

    def assign_target(
        self,
        target: ast.expr,
        value: Value,
        value_node: Optional[ast.expr],
        stmt: ast.stmt,
        state: State,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            elts_vals: list[Value]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(value_node.elts) == len(target.elts):
                elts_vals = [self.eval(e, state) for e in value_node.elts]
            else:
                # elements of a tainted aggregate are tainted
                # (`(length,) = struct.unpack("<I", header)`)
                elt = Value(tainted=value.tainted)
                elts_vals = [elt] * len(target.elts)
            for sub, sv in zip(target.elts, elts_vals):
                self.assign_target(sub, sv, None, stmt, state)
            return
        if isinstance(target, ast.Starred):
            self.assign_target(target.value, Value.obj(), None, stmt, state)
            return
        path = path_of(target)
        if path is None:
            return
        if isinstance(target, ast.Subscript) and not path.endswith("]"):
            # element store: weak update of the base array's element range
            idx_v: Optional[Value] = None
            if isinstance(target.slice, ast.expr):
                sv = self.eval(target.slice, state)
                if not _has_slice(target.slice):
                    idx_v = sv
            cur = state.env.get(path, self.seed(path))
            self.check_array_write(stmt, path, cur, value, idx_v, state)
            state.env[path] = self._element_store(cur, value)
        else:
            self.invalidate(path, state)
            state.env[path] = value
        self.on_assign(path, value, stmt, state)

    def _element_store(self, cur: Value, value: Value) -> Value:
        """Weak update of an array binding for an element store.

        The element range joins, but the buffer identity is the
        *target's* own (storing a scalar into ``a`` does not erase what
        we know about ``a``'s buffer), and a store initializes: the
        contents are no longer ⊥ on this path.
        """
        joined = cur.join(value)
        if cur.arr is not None:
            joined = joined.with_arr(cur.arr.initialized())
        return joined

    def invalidate(self, path: str, state: State) -> None:
        """Reassignment of ``path`` retires facts and bindings built on it."""
        for key in [k for k in state.bounds if path in k]:
            del state.bounds[key]
        for k in [k for k in state.env if k != path and (k.startswith(path + ".") or k.startswith(path + "["))]:
            del state.env[k]
        for k, v in list(state.env.items()):
            if v.origin and path in v.origin[1:]:
                state.env[k] = v.with_origin(None)

    def _exec_loop(
        self,
        stmt: ast.stmt,
        state: State,
        test: Optional[ast.expr] = None,
        for_node: Optional[Union[ast.For, ast.AsyncFor]] = None,
    ) -> State:
        body = stmt.body  # type: ignore[attr-defined]
        orelse = stmt.orelse  # type: ignore[attr-defined]
        elem = Value.obj()
        if for_node is not None:
            it = self.eval(for_node.iter, state)
            ipath = path_of(for_node.iter)
            if ipath and it.kind in (KIND_I64, KIND_FLOAT):
                elem = it
            elif isinstance(for_node.iter, ast.Call):
                fp = path_of(for_node.iter.func)
                if fp in ("range", "enumerate"):
                    elem = Value.pyint(Interval(0, None))
        self._break_states.append([])
        st = state
        for i in range(4):
            body_in = st.copy()
            if for_node is not None:
                self.assign_target(for_node.target, elem, None, stmt, body_in)
                if isinstance(for_node, ast.AsyncFor):
                    # each __anext__ is an await: an interleaving point at
                    # the top of every iteration
                    self.on_await(stmt, None, body_in)
            elif test is not None:
                body_in = self.refine(body_in, test, True)
            body_out = self.exec_block(body, body_in)
            new = self.join_states(st.copy(), body_out)
            if new.same_as(st):
                break
            st = self._widen_states(st, new) if i >= 2 else new
        breaks = self._break_states.pop()
        exit_state = st
        if test is not None:
            exit_state = self.refine(exit_state, test, False)
        for b in breaks:
            exit_state = self.join_states(exit_state, b)
        if orelse:
            exit_state = self.exec_block(orelse, exit_state)
        return exit_state

    def _exec_with(self, stmt: Union[ast.With, ast.AsyncWith], state: State) -> State:
        is_async = isinstance(stmt, ast.AsyncWith)
        bound: list[str] = []
        for item in stmt.items:
            v = self.eval(item.context_expr, state)
            p: Optional[str] = None
            if item.optional_vars is not None:
                p = path_of(item.optional_vars)
                if p:
                    state.env[p] = v
                    self.on_assign(p, v, stmt, state)
            else:
                p = path_of(item.context_expr)
            if p:
                bound.append(p)
            self.on_with_enter(item, v, p, state)
        if is_async:
            # __aenter__ awaits *before* this frame's context is held
            self.on_await(stmt, None, state)
        frame = _WithFrame(stmt, bound)
        self.frames.append(frame)
        out = self.exec_block(stmt.body, state)
        self.frames.pop()
        if is_async and out.reachable:
            # __aexit__ awaits after the frame's own context is released
            self.on_await(stmt, None, out)
        self.on_with_exit(stmt, out)
        return out

    def _exec_try(self, stmt: ast.Try, state: State) -> State:
        entry = state.copy()
        frame = _TryFrame(stmt)
        self.frames.append(frame)
        body_out = self.exec_block(stmt.body, state)
        self.frames.pop()
        handler_entry = entry
        for rs in frame.raise_states:
            handler_entry = self.join_states(handler_entry, rs)
        handler_entry.reachable = True
        handler_outs: list[State] = []
        for handler in stmt.handlers:
            h = handler_entry.copy()
            h.bounds.clear()
            if handler.name:
                h.env[handler.name] = Value.obj()
            handler_outs.append(self.exec_block(handler.body, h))
        if body_out.reachable and stmt.orelse:
            body_out = self.exec_block(stmt.orelse, body_out)
        out = body_out
        for h in handler_outs:
            out = self.join_states(out, h)
        if stmt.finalbody:
            if out.reachable:
                out = self.exec_block(stmt.finalbody, out)
            else:
                # every path raised/returned: finally still runs
                fstate = handler_entry.copy()
                self.exec_block(stmt.finalbody, fstate)
        return out

    # ------------------------------------------------------------------ joins

    def join_states(self, a: State, b: State) -> State:
        if not a.reachable:
            return b
        if not b.reachable:
            return a
        env: dict[str, Value] = {}
        for k in set(a.env) | set(b.env):
            va = a.env.get(k)
            vb = b.env.get(k)
            if va is None:
                va = self.seed(k)
            if vb is None:
                vb = self.seed(k)
            env[k] = va.join(vb)
        bounds = {
            k: max(a.bounds[k], b.bounds[k]) for k in set(a.bounds) & set(b.bounds)
        }
        res: dict[str, str] = {}
        for k in set(a.res) | set(b.res):
            ra, rb = a.res.get(k), b.res.get(k)
            if ra is None:
                res[k] = rb if rb == "released" else "maybe"  # type: ignore[assignment]
            elif rb is None:
                res[k] = ra if ra == "released" else "maybe"
            else:
                res[k] = _join_res(ra, rb)
        return State(env, bounds, res, True)

    def _widen_states(self, old: State, new: State) -> State:
        env = {}
        for k, v in new.env.items():
            ov = old.env.get(k)
            env[k] = v.with_itv(ov.itv.widen(v.itv)) if ov is not None else v.with_itv(Interval.top())
        return State(env, new.bounds, new.res, new.reachable)

    # ------------------------------------------------------------------ eval

    def _load_path(self, path: str, state: State) -> Value:
        v = state.env.get(path)
        if v is None:
            v = self.seed(path)
            state.env[path] = v
        if v.origin is None:
            v = v.with_origin(("id", path))
        return v

    def eval(self, node: ast.expr, state: State) -> Value:
        if isinstance(node, ast.Constant):
            c = node.value
            if isinstance(c, bool):
                return Value(KIND_BOOL, Interval(int(c), int(c)))
            if isinstance(c, int):
                return Value.pyint(Interval.const(c))
            if isinstance(c, float):
                import math

                return Value.flt(Interval.const(c), finite=math.isfinite(c))
            return Value.obj()
        if isinstance(node, ast.Name):
            return self._load_path(node.id, state)
        if isinstance(node, ast.Attribute):
            base = path_of(node.value)
            if base is not None:
                if node.attr in ("size", "nbytes"):
                    return Value(KIND_PYINT, Interval(0, None), origin=("size", base))
                self.on_attr_load(base, node.attr, node, state)
                return self._load_path(f"{base}.{node.attr}", state)
            self.eval(node.value, state)
            return Value.obj()
        if isinstance(node, ast.Subscript):
            sliced = _has_slice(node.slice)
            if isinstance(node.slice, ast.Slice):
                sbounds = [
                    self.eval(b, state)
                    for b in (node.slice.lower, node.slice.upper)
                    if b is not None
                ]
                if node.slice.step is not None:
                    self.eval(node.slice.step, state)
                self.check_slice(node, sbounds, state)
            elif isinstance(node.slice, ast.expr):
                idx = self.eval(node.slice, state)
                self.check_index(node, idx, state)
            p = path_of(node)
            if p is not None:
                # Evaluate the base too so attribute-load hooks see it
                # (`shm.buf[0]` must still count as a read of shm.buf).
                self.eval(node.value, state)
                v = self._load_path(p, state)
                if v.arr is not None and not p.endswith("]"):
                    if sliced:
                        # a slice of an array is a *view* of the same
                        # buffer, with an arbitrary sub-extent
                        return v.with_arr(
                            replace(
                                v.arr.as_view(),
                                count_multiple=1,
                                nelems=Interval(0, v.arr.nelems.hi),
                            )
                        )
                    # element read (possibly a fancy-index copy)
                    self.check_array_read(node, v, state)
                    return v.with_arr(None)
                return v
            bv = self.eval(node.value, state)
            if bv.arr is not None:
                if sliced:
                    return Value(
                        KIND_OBJ,
                        Interval.top(),
                        tainted=bv.tainted,
                        arr=replace(
                            bv.arr.as_view(),
                            count_multiple=1,
                            nelems=Interval(0, bv.arr.nelems.hi),
                        ),
                    )
                self.check_array_read(node, bv, state)
            # an element of tainted bytes is tainted
            return Value(KIND_OBJ, Interval.top(), tainted=bv.tainted)
        if isinstance(node, ast.UnaryOp):
            v = self.eval(node.operand, state)
            if isinstance(node.op, ast.USub):
                out = replace(v, itv=v.itv.neg(), origin=None)
                if v.arr is not None:
                    # negation materializes a temp: fresh, writable buffer
                    self.check_array_read(node, v, state)
                    out = replace(
                        out,
                        arr=replace(v.arr, base=self._site(node), view=False, writable=True),
                    )
                return out
            if isinstance(node.op, ast.Not):
                return Value(KIND_BOOL, Interval(0, 1))
            if isinstance(node.op, ast.UAdd):
                return v
            return Value(v.kind, Interval.top())
        if isinstance(node, ast.BinOp):
            lv = self.eval(node.left, state)
            rv = self.eval(node.right, state)
            return self.binop(node.op, lv, rv, node, state, lpath=path_of(node.left), rpath=path_of(node.right))
        if isinstance(node, ast.BoolOp):
            out = self.eval(node.values[0], state)
            for v in node.values[1:]:
                out = out.join(self.eval(v, state))
            return out
        if isinstance(node, ast.Compare):
            self.eval(node.left, state)
            for c in node.comparators:
                self.eval(c, state)
            return Value(KIND_BOOL, Interval(0, 1))
        if isinstance(node, ast.IfExp):
            t = self.eval(node.body, self.refine(state.copy(), node.test, True))
            f = self.eval(node.orelse, self.refine(state.copy(), node.test, False))
            return t.join(f)
        if isinstance(node, ast.Call):
            return self.eval_call(node, state)
        if isinstance(node, ast.Await):
            inner = node.value
            if isinstance(inner, ast.Call):
                self._awaited_calls.add(id(inner))
            v = self.eval(inner, state)
            self.on_await(node, v, state)
            return v
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for e in node.elts:
                self.eval(e, state)
            return Value.obj()
        if isinstance(node, ast.Dict):
            for k in node.keys:
                if k is not None:
                    self.eval(k, state)
            for v in node.values:
                self.eval(v, state)
            return Value.obj()
        if isinstance(node, ast.Starred):
            return self.eval(node.value, state)
        return Value.obj()

    # ------------------------------------------------------------------ binop

    _CHECKED_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.LShift)

    def binop(
        self,
        op: ast.operator,
        lv: Value,
        rv: Value,
        node: ast.AST,
        state: State,
        lpath: Optional[str] = None,
        rpath: Optional[str] = None,
    ) -> Value:
        kind = _join_kind(lv.kind, rv.kind)
        if isinstance(op, ast.Div):
            kind = KIND_FLOAT if kind in (KIND_PYINT, KIND_I64, KIND_FLOAT, KIND_BOOL) else KIND_OBJ
        itv = self._binop_itv(op, lv.itv, rv.itv)
        # a previously proved |a ± b| bound overrides the raw interval
        if isinstance(op, (ast.Add, ast.Sub)) and lpath and rpath:
            key = tuple(sorted((lpath, rpath)))
            bound = state.bounds.get(key)  # type: ignore[arg-type]
            if bound is not None:
                itv = Interval(-bound, bound)
        quantized = (lv.quantized or rv.quantized) and kind in (KIND_I64, KIND_PYINT)
        if kind == KIND_I64 and isinstance(op, self._CHECKED_OPS):
            self.check_int_arith(node, type(op).__name__, lv, rv, itv, state)
            if not itv.fits_int64():
                itv = Interval.top()  # the concrete op wraps
        origin = self._abssum_origin(op, lv, rv, lpath, rpath)
        if origin is None and isinstance(op, ast.Mod):
            # `buf.size % 8` carries a symbolic origin so an `== 0` guard
            # can refine buf's proven element-count divisor (NPA002)
            if (
                lv.origin is not None
                and lv.origin[0] == "size"
                and rv.itv.lo is not None
                and rv.itv.lo == rv.itv.hi
                and isinstance(rv.itv.lo, int)
                and rv.itv.lo > 0
            ):
                origin = ("sizemod", lv.origin[1], str(rv.itv.lo))
        arr = self._binop_arr(lv, rv, node, state)
        return Value(
            kind=kind,
            itv=itv,
            quantized=quantized,
            origin=origin,
            tainted=lv.tainted or rv.tainted,
            arr=arr,
        )

    def _binop_arr(
        self, lv: Value, rv: Value, node: ast.AST, state: State
    ) -> Optional[ArrayInfo]:
        """Array-lattice element of an elementwise binary op result.

        The result is a *fresh* buffer (``base=None`` — never provably
        aliased) with the array operand's layout; mixed-dtype operands
        promote to an unknown dtype.  Operands with array contents are
        reads (NPA005).
        """
        la, ra = lv.arr, rv.arr
        if la is not None:
            self.check_array_read(node, lv, state)
        if ra is not None:
            self.check_array_read(node, rv, state)
        src: Optional[ArrayInfo]
        if la is not None and ra is not None:
            if la.dtype is not None and la.dtype == ra.dtype:
                src = la
            else:
                src = ArrayInfo()
        else:
            src = la if la is not None else ra
        if src is None:
            return None
        return ArrayInfo(
            base=None,
            view=False,
            provenance=None,
            dtype=src.dtype,
            itemsize=src.itemsize,
            count_multiple=src.count_multiple,
            nelems=src.nelems,
            writable=True,
            init=INIT_YES,
        )

    @staticmethod
    def _abssum_origin(
        op: ast.operator, lv: Value, rv: Value, lpath: Optional[str], rpath: Optional[str]
    ) -> Optional[tuple[str, ...]]:
        if not isinstance(op, ast.Add):
            return None
        lo, ro = lv.origin, rv.origin
        if lo and lo[0] == "absmax" and ro and ro[0] in ("abs", "absmax"):
            return ("abssum", lo[1], ro[1])
        if ro and ro[0] == "absmax" and lo and lo[0] in ("abs", "absmax"):
            return ("abssum", ro[1], lo[1])
        return None

    @staticmethod
    def _binop_itv(op: ast.operator, a: Interval, b: Interval) -> Interval:
        if isinstance(op, ast.Add):
            return a.add(b)
        if isinstance(op, ast.Sub):
            return a.sub(b)
        if isinstance(op, ast.Mult):
            return a.mul(b)
        if isinstance(op, (ast.Pow, ast.LShift)):
            if (
                a.lo is not None
                and a.lo == a.hi
                and b.lo is not None
                and b.lo == b.hi
                and isinstance(a.lo, int)
                and isinstance(b.lo, int)
                and 0 <= b.lo <= 128
            ):
                v = a.lo**b.lo if isinstance(op, ast.Pow) else a.lo << b.lo
                return Interval.const(v)
            return Interval.top()
        if isinstance(op, ast.Mod):
            if b.lo is not None and b.lo == b.hi and isinstance(b.lo, int) and b.lo > 0:
                return Interval(0, b.lo - 1)
            return Interval.top()
        return Interval.top()

    # ------------------------------------------------------------------ calls

    def eval_call(self, node: ast.Call, state: State) -> Value:
        fp = path_of(node.func)
        args = [self.eval(a, state) for a in node.args]
        kwargs = {k.arg: self.eval(k.value, state) for k in node.keywords if k.arg is not None}
        for k in node.keywords:
            if k.arg is None:
                self.eval(k.value, state)
        result = self._eval_known_call(node, fp, args, kwargs, state)
        hooked = self.on_call(node, fp, args, kwargs, state)
        if hooked is not None:
            return hooked
        return result

    def _eval_known_call(
        self,
        node: ast.Call,
        fp: Optional[str],
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Value:
        if fp is None:
            if isinstance(node.func, ast.Attribute):
                # method call on a computed receiver, e.g. np.abs(x).max()
                recv = self.eval(node.func.value, state)
                handled = self._eval_method_call(
                    node, recv, None, node.func.attr, args, kwargs, state
                )
                if handled is not None:
                    return handled
            self._havoc_args(node, state)
            return Value.obj()
        root = fp.split(".", 1)[0]
        leaf = fp.rsplit(".", 1)[-1]

        # ---- builtins -------------------------------------------------
        if fp == "int" and args:
            a = args[0]
            return Value(
                KIND_PYINT,
                a.itv,
                quantized=a.quantized,
                origin=a.origin or self._arg_id(node, 0),
                tainted=a.tainted,
            )
        if fp == "float" and args:
            a = args[0]
            finite = a.kind in (KIND_PYINT, KIND_I64, KIND_BOOL) or a.finite
            return Value(KIND_FLOAT, a.itv, quantized=a.quantized, finite=finite, origin=a.origin, tainted=a.tainted)
        if fp == "abs" and args:
            a = args[0]
            origin = None
            # prefer the syntactic argument path: bound facts are keyed by
            # the paths at the use site, not by where the value came from
            src = self._arg_id(node, 0) or a.origin
            if src and src[0] == "id":
                origin = ("abs", src[1])
            return Value(a.kind if a.kind != KIND_BOOL else KIND_PYINT, a.itv.abs(), quantized=a.quantized, origin=origin, tainted=a.tainted)
        if fp == "len" and node.args:
            p = path_of(node.args[0])
            return Value(KIND_PYINT, Interval(0, None), origin=("size", p) if p else None)
        if fp == "bool":
            return Value(KIND_BOOL, Interval(0, 1))
        if fp in ("min", "max") and args:
            out = args[0]
            for a in args[1:]:
                out = out.join(a)
            return out.with_origin(None)
        if fp in ("range", "enumerate", "zip", "sorted", "list", "tuple", "dict", "set", "isinstance", "print", "repr", "str", "format", "getattr", "hasattr"):
            return Value.obj()

        # ---- struct: unpacking tainted bytes yields tainted numbers ---
        if root == "struct" and leaf in ("unpack", "unpack_from"):
            tainted = any(a.tainted for a in args) or any(
                v.tainted for v in kwargs.values()
            )
            return Value(KIND_OBJ, Interval.top(), tainted=tainted)

        # ---- numpy / math --------------------------------------------
        if root in _NUMPY_ROOTS:
            return self._eval_numpy_call(node, leaf, args, kwargs, state)
        if root == "math":
            if leaf == "isfinite" and node.args:
                p = path_of(node.args[0])
                return Value(KIND_BOOL, Interval(0, 1), origin=("allfinite", p) if p else None)
            return Value(KIND_FLOAT, Interval.top())
        if fp == "as_strided":
            # ``from numpy.lib.stride_tricks import as_strided`` spelling
            return self._eval_numpy_call(node, leaf, args, kwargs, state)

        # ---- method calls on pathed receivers ------------------------
        if isinstance(node.func, ast.Attribute):
            recv_node = node.func.value
            recv_path = path_of(recv_node)
            meth = node.func.attr
            recv = self.eval(recv_node, state) if recv_path is None else self._load_path(recv_path, state)
            handled = self._eval_method_call(node, recv, recv_path, meth, args, kwargs, state)
            if handled is not None:
                return handled

        # ---- module-local functions and constructors ------------------
        callee = self._resolve_local(fp)
        if callee is not None:
            rec = self.call_args.setdefault(callee.qualname, [])
            rec.append((args, kwargs))
            self._havoc_args(node, state)
            summary = self.summaries.get(callee.qualname)
            return summary if summary is not None else Value.obj()
        cname = leaf if (leaf in self.ctx.classes or leaf in self.CTOR_NAMES) else None
        if cname is not None:
            self._havoc_args(node, state)
            return Value.obj(ctor=cname)

        # ---- unknown --------------------------------------------------
        self._havoc_args(node, state)
        return Value.obj()

    @staticmethod
    def _arg_id(node: ast.Call, i: int) -> Optional[tuple[str, ...]]:
        if i < len(node.args):
            p = path_of(node.args[i])
            if p:
                return ("id", p)
        return None

    def _site(self, node: ast.AST) -> str:
        """Allocation-site buffer id, unique within one function analysis."""
        qn = self.current.qualname if self.current is not None else "<module>"
        return f"{qn}:{getattr(node, 'lineno', 0)}:{getattr(node, 'col_offset', 0)}"

    @staticmethod
    def _shape_facts(
        shape_node: Optional[ast.expr], shape_val: Optional[Value]
    ) -> tuple[Interval, int]:
        """``(nelems, count_multiple)`` proven by an allocation's shape.

        A constant trailing-dim tuple like ``(n, 8)`` proves the element
        count is a multiple of 8 — which is what the byte-view emit
        kernels need for ``.view(np.uint64)`` reinterpretation proofs.
        """
        if shape_node is None:
            return (Interval.top(), 1)
        if isinstance(shape_node, ast.Tuple):
            mult = 1
            all_const = True
            for e in shape_node.elts:
                if (
                    isinstance(e, ast.Constant)
                    and isinstance(e.value, int)
                    and e.value > 0
                ):
                    mult *= e.value
                else:
                    all_const = False
            if all_const and mult > 0:
                return (Interval.const(mult), mult)
            return (Interval(0, None), max(mult, 1))
        if shape_val is not None and shape_val.kind in (KIND_PYINT, KIND_I64):
            itv = shape_val.itv.meet(Interval(0, None))
            cm = 1
            if (
                itv.lo is not None
                and itv.lo == itv.hi
                and isinstance(itv.lo, int)
                and itv.lo > 0
            ):
                cm = itv.lo
            return (itv, cm)
        return (Interval(0, None), 1)

    def _dtype_info(self, node: ast.Call) -> Optional[tuple[str, Optional[int], str]]:
        """``(name, itemsize, kind)`` of a call's dtype argument, if any."""
        for k in node.keywords:
            if k.arg == "dtype":
                return dtype_info_of(k.value)
        if len(node.args) >= 2:
            return dtype_info_of(node.args[1])
        return None

    #: numpy leafs that read their array arguments' contents (NPA005).
    _NP_READ_LEAFS = frozenset(
        {
            "abs", "absolute", "fabs", "floor", "ceil", "rint", "trunc",
            "round", "add", "subtract", "multiply", "negative", "cumsum",
            "sum", "nansum", "prod", "max", "amax", "min", "amin", "mean",
            "std", "var", "median", "dot", "vdot", "diff", "where",
            "isfinite", "all", "any", "packbits", "unpackbits", "copy",
            "array", "repeat", "tile", "sqrt", "exp", "log", "hypot",
            "searchsorted", "argsort", "sort", "unique", "count_nonzero",
            "bincount", "clip",
        }
    )

    def _eval_numpy_call(
        self,
        node: ast.Call,
        leaf: str,
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Value:
        a0 = args[0] if args else Value.obj()
        if leaf in self._NP_READ_LEAFS:
            for a in args:
                if a.arr is not None:
                    self.check_array_read(node, a, state)
        out: Optional[Value] = None
        if leaf in ("abs", "absolute", "fabs"):
            p = path_of(node.args[0]) if node.args else None
            # opaque input stays opaque: laundering OBJ to FLOAT here would
            # let the cast check fire on values we know nothing about
            kind = a0.kind if a0.kind != KIND_BOOL else KIND_PYINT
            out = Value(kind, a0.itv.abs(), quantized=a0.quantized, finite=a0.finite, origin=("abs", p) if p else None)
        elif leaf in ("asarray", "ascontiguousarray", "array", "copy"):
            kind = a0.kind
            finite = a0.finite
            info = self._dtype_info(node)
            dt = info[2] if info is not None else None
            if dt is not None:
                if dt == KIND_FLOAT and a0.kind in (KIND_PYINT, KIND_I64, KIND_BOOL):
                    finite = True
                kind = dt
            if leaf in ("array", "copy"):
                # definitely a fresh, writable buffer
                arr = self._fresh_arr(
                    base=self._site(node),
                    dtype=info[0] if info is not None else (a0.arr.dtype if a0.arr else None),
                    itemsize=info[1] if info is not None else (a0.arr.itemsize if a0.arr else None),
                    count_multiple=a0.arr.count_multiple if a0.arr else 1,
                    nelems=a0.arr.nelems if a0.arr else Interval(0, None),
                )
            elif a0.arr is not None:
                # asarray/ascontiguousarray may return the input itself:
                # same buffer identity (may-alias), layout carried over
                arr = a0.arr
                if info is not None and info[0] != arr.dtype:
                    arr = replace(arr, dtype=info[0], itemsize=info[1])
            else:
                arr = self._fresh_arr(
                    base=self._site(node),
                    dtype=info[0] if info is not None else None,
                    itemsize=info[1] if info is not None else None,
                )
            out = Value(kind if kind != KIND_OBJ else KIND_OBJ, a0.itv, quantized=a0.quantized, finite=finite, arr=arr)
        elif leaf in ("floor", "ceil", "rint", "trunc", "round"):
            out = Value(KIND_FLOAT, a0.itv.expand(1), quantized=a0.quantized, finite=a0.finite)
        elif leaf in ("add", "subtract", "multiply") and len(args) >= 2:
            opmap = {"add": ast.Add(), "subtract": ast.Sub(), "multiply": ast.Mult()}
            out = self.binop(
                opmap[leaf],
                args[0],
                args[1],
                node,
                state,
                lpath=path_of(node.args[0]),
                rpath=path_of(node.args[1]),
            )
        elif leaf == "negative":
            out = replace(a0, itv=a0.itv.neg(), origin=None)
        elif leaf in ("cumsum", "sum", "nansum", "prod"):
            dt = self._dtype_kw(node)
            kind = dt if dt is not None else (a0.kind if a0.kind in (KIND_I64, KIND_FLOAT) else KIND_OBJ)
            out = Value(kind, Interval.top(), quantized=a0.quantized and kind == KIND_I64)
        elif leaf in ("ravel", "reshape"):
            # element count and buffer identity survive a reshape
            out = replace(
                a0,
                origin=None,
                arr=a0.arr.as_view() if a0.arr is not None else None,
            )
        elif leaf in ("repeat", "tile"):
            arr = (
                replace(a0.arr, base=self._site(node), view=False, count_multiple=1, nelems=Interval(0, None))
                if a0.arr is not None
                else None
            )
            out = replace(a0, origin=None, arr=arr)
        elif leaf in ("empty", "empty_like", "zeros", "zeros_like", "ones", "ones_like", "full", "full_like"):
            info = self._dtype_info(node)
            dt = info[2] if info is not None else None
            like = leaf.endswith("_like")
            kind = dt if dt is not None else (a0.kind if like else KIND_OBJ)
            if like and a0.arr is not None:
                nelems, cm = a0.arr.nelems, a0.arr.count_multiple
                if info is None:
                    info = (a0.arr.dtype, a0.arr.itemsize, kind) if a0.arr.dtype else None
            elif like:
                # prototype carries no layout facts (args[0] is an array,
                # not a shape)
                nelems, cm = Interval(0, None), 1
            else:
                nelems, cm = self._shape_facts(
                    node.args[0] if node.args else None, a0 if args else None
                )
            arr = self._fresh_arr(
                base=self._site(node),
                provenance=leaf.split("_")[0],
                dtype=info[0] if info is not None else None,
                itemsize=info[1] if info is not None else None,
                count_multiple=cm,
                nelems=nelems,
                init=INIT_NO if leaf.startswith("empty") else INIT_YES,
            )
            if leaf.startswith("empty"):
                # uninitialized contents: element range is ⊥ until written
                out = Value(kind, Interval.bottom(), arr=arr)
            else:
                if leaf.startswith("zeros"):
                    itv = Interval.const(0)
                elif leaf.startswith("ones"):
                    itv = Interval.const(1)
                else:
                    fill = args[1] if len(args) > 1 else kwargs.get("fill_value", Value.obj())
                    itv = fill.itv
                out = Value(kind, itv, arr=arr)
        elif leaf == "frombuffer":
            info = self._dtype_info(node)
            rng = INT_DTYPE_RANGES.get(info[0]) if info is not None else None
            arr = self._fresh_arr(
                base=self._site(node),
                view=True,
                provenance="frombuffer",
                dtype=info[0] if info is not None else None,
                itemsize=info[1] if info is not None else None,
                writable=False,
            )
            out = Value(
                info[2] if info is not None else KIND_OBJ,
                Interval(rng[0], rng[1]) if rng is not None else Interval.top(),
                tainted=a0.tainted,
                arr=arr,
            )
        elif leaf == "broadcast_to":
            src = a0.arr
            arr = self._fresh_arr(
                base=src.base if src is not None and src.base else self._site(node),
                view=True,
                provenance="broadcast_to",
                dtype=src.dtype if src is not None else None,
                itemsize=src.itemsize if src is not None else None,
                writable=False,
                init=src.init if src is not None else INIT_YES,
            )
            out = replace(a0, origin=None, arr=arr)
        elif leaf == "ndarray":
            info = self._dtype_info(node)
            nelems, cm = self._shape_facts(
                node.args[0] if node.args else None, a0 if args else None
            )
            buf_node = next(
                (k.value for k in node.keywords if k.arg == "buffer"), None
            )
            if buf_node is None and len(node.args) >= 3:
                buf_node = node.args[2]
            if buf_node is not None:
                bp = path_of(buf_node)
                arr = self._fresh_arr(
                    base=f"buf:{bp}" if bp else self._site(node),
                    view=True,
                    provenance="ndarray",
                    dtype=info[0] if info is not None else None,
                    itemsize=info[1] if info is not None else None,
                    count_multiple=cm,
                    nelems=nelems,
                )
            else:
                arr = self._fresh_arr(
                    base=self._site(node),
                    provenance="ndarray",
                    dtype=info[0] if info is not None else None,
                    itemsize=info[1] if info is not None else None,
                    count_multiple=cm,
                    nelems=nelems,
                    init=INIT_NO,
                )
            out = Value(info[2] if info is not None else KIND_OBJ, Interval.top(), arr=arr)
        elif leaf == "arange":
            info = next(
                (dtype_info_of(k.value) for k in node.keywords if k.arg == "dtype"),
                None,
            )
            nelems, cm = Interval(0, None), 1
            itv = Interval.top()
            if len(args) == 1:
                n = self._const_of(a0)
                if n is not None and isinstance(n, int) and n > 0:
                    nelems, cm, itv = Interval.const(n), n, Interval(0, n - 1)
                elif a0.itv.hi is not None:
                    nelems, itv = Interval(0, a0.itv.hi), Interval(0, a0.itv.hi - 1)
                else:
                    nelems, itv = Interval(0, None), Interval(0, None)
            arr = self._fresh_arr(
                base=self._site(node),
                provenance="arange",
                dtype=info[0] if info is not None else None,
                itemsize=info[1] if info is not None else None,
                count_multiple=cm,
                nelems=nelems,
            )
            out = Value(info[2] if info is not None else KIND_I64, itv, arr=arr)
        elif leaf in ("packbits", "unpackbits"):
            arr = self._fresh_arr(base=self._site(node), provenance=leaf, dtype="uint8", itemsize=1)
            out = Value(
                KIND_I64,
                Interval(0, 1) if leaf == "unpackbits" else Interval(0, 255),
                arr=arr,
            )
        elif leaf == "as_strided":
            shape_node = next(
                (k.value for k in node.keywords if k.arg == "shape"), None
            )
            if shape_node is None and len(node.args) >= 2:
                shape_node = node.args[1]
            nelems, cm = self._shape_facts(shape_node, None)
            arr = (
                replace(
                    a0.arr.as_view(),
                    provenance="as_strided",
                    count_multiple=cm,
                    nelems=nelems,
                )
                if a0.arr is not None
                else self._fresh_arr(
                    base=self._site(node),
                    view=True,
                    provenance="as_strided",
                    count_multiple=cm,
                    nelems=nelems,
                )
            )
            out = replace(a0, origin=None, arr=arr)
        elif leaf == "clip" and len(args) >= 3:
            lo_c = self._const_of(args[1])
            hi_c = self._const_of(args[2])
            lo, hi = a0.itv.lo, a0.itv.hi
            if lo_c is not None:
                lo = lo_c if lo is None else max(lo, lo_c)
            if hi_c is not None:
                hi = hi_c if hi is None else min(hi, hi_c)
            itv = a0.itv if a0.itv.empty else Interval(lo, hi)
            arr = (
                replace(a0.arr, base=self._site(node), view=False, writable=True)
                if a0.arr is not None
                else None
            )
            out = replace(a0, itv=itv, origin=None, arr=arr)
        elif leaf == "isfinite" and node.args:
            p = path_of(node.args[0])
            out = Value(KIND_BOOL, Interval(0, 1), origin=("allfinite", p) if p else None)
        elif leaf in ("all", "any"):
            src = a0.origin
            origin = src if leaf == "all" and src and src[0] == "allfinite" else None
            out = Value(KIND_BOOL, Interval(0, 1), origin=origin)
        elif leaf in ("max", "amax", "min", "amin"):
            out = self._reduce_minmax(a0, node.args[0] if node.args else None, leaf.lstrip("a"))
        elif leaf == "where" and len(args) == 3:
            out = args[1].join(args[2])
        elif leaf in ("sqrt", "exp", "log", "mean", "std", "var", "median", "dot", "vdot", "hypot", "spacing", "nextafter", "diff"):
            out = Value(KIND_FLOAT, Interval.top())
        elif leaf in ("int64", "int32", "intp"):
            out = Value(KIND_I64, a0.itv if args else Interval.top(), quantized=a0.quantized)
        elif leaf in ("uint8", "uint16", "uint32", "uint64", "int8", "int16"):
            lo, hi = INT_DTYPE_RANGES[leaf]
            rng = Interval(lo, hi)
            if args and not a0.itv.empty and a0.itv.meet(rng) == a0.itv:
                out = Value(KIND_I64, a0.itv, quantized=a0.quantized)
            else:
                # value may wrap: all we know is the dtype range
                out = Value(KIND_I64, rng)
        elif leaf in ("float64", "float32"):
            out = Value(KIND_FLOAT, a0.itv if args else Interval.top())
        elif leaf in ("errstate", "dtype", "iinfo", "finfo", "seterr"):
            out = Value.obj()
        if out is None:
            out = Value.obj()
        # out= kwarg writes the result through the named array
        out_node = next((k.value for k in node.keywords if k.arg == "out"), None)
        if out_node is not None:
            op = path_of(out_node)
            if op is not None:
                base = op
                cur = state.env.get(base, self.seed(base))
                self.check_array_write(node, base, cur, out, None, state)
                if isinstance(out_node, ast.Subscript) and not base.endswith("]"):
                    stored = self._element_store(cur, out)
                else:
                    stored = out
                    if cur.arr is not None:
                        stored = stored.with_arr(cur.arr.initialized())
                state.env[base] = stored
                self.invalidate(base, state)
                self.on_assign(base, stored, node, state)
            elif isinstance(out_node, ast.Subscript):
                # ``out=buf[1:]``: a write through an anonymous view of buf
                bp = path_of(out_node.value)
                if bp is not None:
                    cur = state.env.get(bp, self.seed(bp))
                    self.check_array_write(node, bp, cur, out, None, state)
                    state.env[bp] = self._element_store(cur, out)
                    self.invalidate(bp, state)
        return out

    def _dtype_kw(self, node: ast.Call) -> Optional[str]:
        for k in node.keywords:
            if k.arg == "dtype":
                return _dtype_kind_of(k.value)
        # positional dtype in np.zeros(n, np.int64) style
        if len(node.args) >= 2:
            return _dtype_kind_of(node.args[1])
        return None

    @staticmethod
    def _reduce_minmax(a0: Value, arg_node: Optional[ast.expr], which: str) -> Value:
        origin = None
        src = a0.origin
        if src and src[0] == "abs":
            origin = ("absmax", src[1]) if which == "max" else None
        elif src and src[0] == "id":
            origin = (which, src[1])
        elif arg_node is not None:
            p = path_of(arg_node)
            if p:
                origin = (which, p)
        return Value(a0.kind if a0.kind in (KIND_I64, KIND_FLOAT, KIND_PYINT) else KIND_OBJ, a0.itv, quantized=a0.quantized, finite=a0.finite, origin=origin)

    def _eval_method_call(
        self,
        node: ast.Call,
        recv: Value,
        recv_path: Optional[str],
        meth: str,
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Optional[Value]:
        if meth in ("max", "min") and not args:
            if recv.arr is not None:
                self.check_array_read(node, recv, state)
            return self._reduce_minmax(recv, node.func.value if isinstance(node.func, ast.Attribute) else None, meth)
        if meth == "astype" and node.args:
            if recv.arr is not None:
                self.check_array_read(node, recv, state)
            info = dtype_info_of(node.args[0])
            dst = info[2] if info is not None else _dtype_kind_of(node.args[0])
            if info is not None:
                self.check_astype(node, recv, info[0], info[1], state)
            arr = (
                replace(
                    recv.arr,
                    base=self._site(node),
                    view=False,
                    provenance="astype",
                    dtype=info[0] if info is not None else None,
                    itemsize=info[1] if info is not None else None,
                    writable=True,
                    init=INIT_YES,
                )
                if recv.arr is not None
                else None
            )
            if dst is None:
                return Value(KIND_OBJ, Interval.top(), arr=arr) if arr is not None else Value.obj()
            if dst == KIND_I64:
                self.check_cast(node, recv, dst, state)
                itv = recv.itv.meet(Interval(-(1 << 63), (1 << 63) - 1)) if recv.kind == KIND_FLOAT else recv.itv
                rng = INT_DTYPE_RANGES.get(info[0]) if info is not None else None
                if rng is not None and (
                    itv.empty or itv.lo is None or itv.hi is None or itv.lo < rng[0] or itv.hi > rng[1]
                ):
                    # narrowing may wrap: all we know is the dtype range
                    itv = Interval(rng[0], rng[1])
                return Value(KIND_I64, itv, quantized=recv.quantized, arr=arr)
            if dst == KIND_FLOAT:
                finite = recv.finite or recv.kind in (KIND_PYINT, KIND_I64, KIND_BOOL)
                return Value(KIND_FLOAT, recv.itv, quantized=recv.quantized, finite=finite, arr=arr)
            return Value(dst, Interval.top(), arr=arr)
        if meth == "copy" and not args:
            out = recv.with_origin(None)
            if recv.arr is not None:
                self.check_array_read(node, recv, state)
                out = out.with_arr(
                    replace(recv.arr, base=self._site(node), view=False, provenance="copy", writable=True)
                )
            return out
        if meth in ("reshape", "ravel", "flatten", "squeeze", "transpose"):
            arr = recv.arr
            if arr is not None:
                if meth == "flatten":
                    # flatten always copies; the rest return views
                    arr = replace(arr, base=self._site(node), view=False, writable=True)
                else:
                    arr = arr.as_view()
                if meth == "reshape" and node.args:
                    dims = list(node.args)
                    if len(dims) == 1 and isinstance(dims[0], ast.Tuple):
                        dims = list(dims[0].elts)
                    mult = 1
                    for e in dims:
                        if isinstance(e, ast.Constant) and isinstance(e.value, int) and e.value > 0:
                            mult *= e.value
                    if mult > 1:
                        # a constant positive dim divides the element count
                        arr = replace(arr, count_multiple=math.lcm(arr.count_multiple, mult))
            return recv.with_origin(None).with_arr(arr)
        if meth == "view" and node.args:
            info = dtype_info_of(node.args[0])
            if info is not None:
                self.check_view_cast(node, recv, info[0], info[1], state)
            dst = info[2] if info is not None else _dtype_kind_of(node.args[0])
            arr = None
            if recv.arr is not None:
                src = recv.arr
                cm = 1
                ne = Interval(0, None)
                if info is not None and info[1] and src.itemsize:
                    old_bytes = src.count_multiple * src.itemsize
                    if old_bytes % info[1] == 0:
                        cm = old_bytes // info[1]
                    if src.nelems.lo is not None and src.nelems.lo == src.nelems.hi:
                        tot = src.nelems.lo * src.itemsize
                        if tot % info[1] == 0:
                            ne = Interval.const(tot // info[1])
                arr = replace(
                    src.as_view(),
                    provenance="view",
                    dtype=info[0] if info is not None else None,
                    itemsize=info[1] if info is not None else None,
                    count_multiple=cm,
                    nelems=ne,
                )
            rng = INT_DTYPE_RANGES.get(info[0]) if info is not None else None
            itv = Interval(rng[0], rng[1]) if rng is not None else Interval.top()
            return Value(dst or KIND_OBJ, itv, arr=arr)
        if meth == "byteswap":
            arr = None
            itv = Interval.top()
            if recv.arr is not None:
                self.check_array_read(node, recv, state)
                # byteswap() without inplace=True returns a fresh buffer
                arr = replace(recv.arr, base=self._site(node), view=False, writable=True)
                rng = INT_DTYPE_RANGES.get(recv.arr.dtype) if recv.arr.dtype else None
                if rng is not None:
                    itv = Interval(rng[0], rng[1])
            return Value(recv.kind, itv, arr=arr)
        if meth in ("item", "tobytes", "tolist") and not args:
            if recv.arr is not None:
                self.check_array_read(node, recv, state)
            if meth != "item":
                return Value(KIND_OBJ, Interval.top(), tainted=recv.tainted)
            kind = KIND_PYINT if recv.kind == KIND_I64 else recv.kind
            return Value(kind, recv.itv, quantized=recv.quantized, finite=recv.finite)
        if meth == "sum":
            if recv.arr is not None:
                self.check_array_read(node, recv, state)
            dt = self._dtype_kw(node)
            kind = dt if dt else (recv.kind if recv.kind in (KIND_I64, KIND_FLOAT) else KIND_OBJ)
            return Value(kind, Interval.top(), quantized=recv.quantized and kind == KIND_I64)
        if meth in ("mean", "std", "var"):
            if recv.arr is not None:
                self.check_array_read(node, recv, state)
            return Value(KIND_FLOAT, Interval.top())
        if meth in ("any", "all"):
            if recv.arr is not None:
                self.check_array_read(node, recv, state)
            return Value(KIND_BOOL, Interval(0, 1))
        if meth == "fill" and recv_path and args:
            cur = state.env.get(recv_path, self.seed(recv_path))
            self.check_array_write(node, recv_path, cur, args[0], None, state)
            nv = replace(args[0], quantized=recv.quantized or args[0].quantized)
            if cur.arr is not None:
                # fill overwrites every element: initialized on this path
                nv = nv.with_arr(cur.arr.initialized())
            state.env[recv_path] = nv
            self.invalidate(recv_path, state)
            return Value.obj()
        # self.<method> → module-local method of the current class
        if recv_path == "self" and self.current is not None and self.current.class_name:
            qn = f"{self.current.class_name}.{meth}"
            callee = self.ctx.functions.get(qn)
            if callee is not None:
                self.call_args.setdefault(qn, []).append((args, kwargs))
                self._havoc_args(node, state)
                summary = self.summaries.get(qn)
                return summary if summary is not None else Value.obj()
        # ctor-typed receiver → method of that module-local class
        # (`r = _Reader(buf); r.u16(...)` resolves to `_Reader.u16`)
        if recv.ctor is not None and recv_path != "self":
            qn = f"{recv.ctor}.{meth}"
            callee = self.ctx.functions.get(qn)
            if callee is not None:
                self.call_args.setdefault(qn, []).append((args, kwargs))
                self._havoc_args(node, state)
                summary = self.summaries.get(qn)
                return summary if summary is not None else Value.obj()
        return None

    def _resolve_local(self, fp: str) -> Optional[FuncInfo]:
        if "." in fp:
            return None
        return self.ctx.functions.get(fp)

    def _havoc_args(self, node: ast.Call, state: State) -> None:
        """Unknown callee may mutate its arguments: retire derived bindings."""
        for arg in list(node.args) + [k.value for k in node.keywords]:
            p = path_of(arg)
            if p is None:
                continue
            v = state.env.get(p)
            if v is not None and v.kind in (KIND_I64, KIND_FLOAT):
                # mutable array contents may have changed: reseed by name
                state.env.pop(p, None)
            for k in [k for k in state.env if k.startswith(p + ".") or k.startswith(p + "[")]:
                del state.env[k]
            self.invalidate(p, state)

    # ------------------------------------------------------------------ refine

    def refine(self, state: State, test: ast.expr, branch: bool) -> State:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self.refine(state, test.operand, not branch)
        if isinstance(test, ast.BoolOp):
            is_and = isinstance(test.op, ast.And)
            if is_and == branch:
                # all conjuncts true (And-true) / all disjuncts false (Or-false)
                for v in test.values:
                    state = self.refine(state, v, branch)
                return state
            # De Morgan split: join the per-operand early exits
            outs: list[State] = []
            cur = state
            for v in test.values:
                outs.append(self.refine(cur.copy(), v, branch))
                cur = self.refine(cur, v, not branch)
            out = outs[0]
            for o in outs[1:]:
                out = self.join_states(out, o)
            return out
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            return self._refine_compare(state, test, branch)
        # bare truthiness
        v = self.eval(test, state.copy())
        p = path_of(test)
        if v.origin and v.origin[0] == "size":
            base = v.origin[1]
            bv = state.env.get(base, self.seed(base))
            if not branch:
                state.env[base] = bv.with_itv(Interval.bottom())
            return state
        if v.origin and v.origin[0] == "sizemod" and not branch:
            # falsy ``buf.size % k`` proves the element count divides by k
            base = v.origin[1]
            try:
                k = int(v.origin[2])
            except (ValueError, IndexError):
                k = 0
            bv = state.env.get(base, self.seed(base))
            if bv.arr is not None and k > 1:
                arr = replace(bv.arr, count_multiple=math.lcm(bv.arr.count_multiple, k))
                state.env[base] = bv.with_arr(arr)
            return state
        if v.origin and v.origin[0] == "allfinite" and branch:
            base = v.origin[1]
            bv = state.env.get(base, self.seed(base))
            state.env[base] = replace(bv, finite=True)
            return state
        if p and not branch and v.kind in (KIND_PYINT, KIND_I64):
            pv = state.env.get(p, self.seed(p))
            state.env[p] = pv.with_itv(pv.itv.meet(Interval.const(0)))
        return state

    def _refine_compare(self, state: State, test: ast.Compare, branch: bool) -> State:
        op = test.ops[0]
        left, right = test.left, test.comparators[0]
        lv = self.eval(left, state.copy())
        rv = self.eval(right, state.copy())
        if isinstance(op, (ast.In, ast.NotIn)):
            # membership in a known table is a validation fact
            if branch == isinstance(op, ast.In):
                self._clear_taint(state, left)
            return state
        lc = self._const_of(lv)
        rc = self._const_of(rv)
        if rc is not None and lc is None:
            self._refine_against_const(state, left, lv, op, rc, branch, mirrored=False)
        elif lc is not None and rc is None:
            self._refine_against_const(state, right, rv, op, lc, branch, mirrored=True)
        else:
            # No interval information without a constant side, but an
            # upper-bound comparison against *anything* (`n <= max_frame`,
            # `pos + n > len(buf)` on the false edge) still counts as a
            # bounds check: the guarded side stops being tainted.
            opname = type(op).__name__
            if not branch:
                opname = {"Lt": "GtE", "LtE": "Gt", "Gt": "LtE", "GtE": "Lt"}.get(opname, "skip")
            if opname in ("Lt", "LtE"):
                self._clear_taint(state, left)
            elif opname in ("Gt", "GtE"):
                self._clear_taint(state, right)
        return state

    def _clear_taint(self, state: State, node: ast.expr) -> None:
        """Clear the taint bit on every pathed load inside ``node``."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Name, ast.Attribute, ast.Subscript)):
                p = path_of(sub)
                if p is None:
                    continue
                v = state.env.get(p)
                if v is not None and v.tainted:
                    state.env[p] = v.with_tainted(False)

    @staticmethod
    def _const_of(v: Value) -> Optional[float]:
        if not v.itv.empty and v.itv.lo is not None and v.itv.lo == v.itv.hi:
            return v.itv.lo
        return None

    def _refine_against_const(
        self,
        state: State,
        node: ast.expr,
        val: Value,
        op: ast.cmpop,
        c: float,
        branch: bool,
        mirrored: bool,
    ) -> None:
        # normalize to  expr <op> c  on the True branch
        opname = type(op).__name__
        if mirrored:
            opname = {"Lt": "Gt", "LtE": "GtE", "Gt": "Lt", "GtE": "LtE"}.get(opname, opname)
        if not branch:
            opname = {"Lt": "GtE", "LtE": "Gt", "Gt": "LtE", "GtE": "Lt", "Eq": "NotEq", "NotEq": "Eq"}.get(opname, "skip")
        is_int = val.kind in (KIND_PYINT, KIND_I64)
        step = 1 if is_int and isinstance(c, int) else 0
        if opname == "Lt":
            upper: Interval = Interval(None, c - step)
        elif opname == "LtE":
            upper = Interval(None, c)
        elif opname == "Gt":
            upper = Interval(c + step, None)
        elif opname == "GtE":
            upper = Interval(c, None)
        elif opname == "Eq":
            upper = Interval.const(c)
        else:
            return
        # 1) narrow the compared l-value itself
        p = path_of(node)
        if p:
            pv = state.env.get(p, self.seed(p))
            pv = pv.with_itv(pv.itv.meet(upper))
            if opname in ("Lt", "LtE", "Eq") and pv.tainted:
                # a finite upper bound is a bounds-check guard fact
                pv = pv.with_tainted(False)
            state.env[p] = pv
        elif opname in ("Lt", "LtE", "Eq"):
            # compound left side (`pos + n < limit`): no single binding to
            # narrow, but the upper bound still sanitizes its operands
            self._clear_taint(state, node)
        # 2) origin-directed effects
        origin = val.origin
        if origin is None:
            return
        tag = origin[0]
        if tag in ("abs", "absmax") and opname in ("Lt", "LtE"):
            bound = upper.hi
            if bound is not None:
                base = origin[1]
                bv = state.env.get(base, self.seed(base))
                state.env[base] = bv.with_itv(bv.itv.meet(Interval(-bound, bound)))
        elif tag == "abssum" and opname in ("Lt", "LtE"):
            bound = upper.hi
            if bound is not None and isinstance(bound, int):
                key = tuple(sorted((origin[1], origin[2])))
                prev = state.bounds.get(key)  # type: ignore[arg-type]
                state.bounds[key] = bound if prev is None else min(prev, bound)  # type: ignore[index]
        elif tag == "max" and opname in ("Lt", "LtE"):
            base = origin[1]
            bv = state.env.get(base, self.seed(base))
            state.env[base] = bv.with_itv(bv.itv.meet(Interval(None, upper.hi)))
        elif tag == "min" and opname in ("Gt", "GtE"):
            base = origin[1]
            bv = state.env.get(base, self.seed(base))
            state.env[base] = bv.with_itv(bv.itv.meet(Interval(upper.lo, None)))
        elif tag == "size" and opname == "Eq" and c == 0:
            base = origin[1]
            bv = state.env.get(base, self.seed(base))
            state.env[base] = bv.with_itv(Interval.bottom())
        elif tag == "sizemod" and opname == "Eq" and c == 0:
            # ``buf.size % k == 0`` proves the element count divides by k
            base = origin[1]
            try:
                k = int(origin[2])
            except (ValueError, IndexError):
                return
            bv = state.env.get(base, self.seed(base))
            if bv.arr is not None and k > 1:
                arr = replace(bv.arr, count_multiple=math.lcm(bv.arr.count_multiple, k))
                state.env[base] = bv.with_arr(arr)


# ---------------------------------------------------------------------------
# module driver: two analysis rounds with call summaries
# ---------------------------------------------------------------------------


def analyze_module(
    source_path: str,
    tree: ast.Module,
    make_interp: Callable[[ModuleContext, Mapping[str, Value]], Interpreter],
    ctx: Optional[ModuleContext] = None,
) -> tuple[list[Finding], dict[str, FunctionResult]]:
    """Run a pass over every function with two-round call summaries.

    Round 1 analyzes each function with name-based seeds, collecting
    return summaries and observed call-site arguments.  Round 2
    re-analyzes everything with the full summary table, refining private
    functions' parameters to the join of their observed arguments.
    Findings are taken from round 2 only.

    ``ctx`` lets the driver share one :class:`ModuleContext` (and the
    parse it indexes) across every pass over the same file; the context
    is read-only during analysis.
    """
    if ctx is None:
        ctx = ModuleContext.build(source_path, tree)
    summaries: dict[str, Value] = {}
    observed: dict[str, list[tuple[list[Value], dict[str, Value]]]] = {}
    for qn, fn in ctx.functions.items():
        interp = make_interp(ctx, summaries)
        res = interp.run(fn)
        summaries[qn] = res.return_value
        for callee, calls in res.call_args.items():
            observed.setdefault(callee, []).extend(calls)

    findings: list[Finding] = []
    results: dict[str, FunctionResult] = {}
    for qn, fn in ctx.functions.items():
        params = _observed_params(fn, observed.get(qn)) if fn.is_internal else None
        interp = make_interp(ctx, summaries)
        res = interp.run(fn, params=params)
        findings.extend(res.findings)
        results[qn] = res
    return findings, results


def _observed_params(
    fn: FuncInfo, calls: Optional[list[tuple[list[Value], dict[str, Value]]]]
) -> Optional[dict[str, Value]]:
    if not calls:
        return None
    argnames = [a.arg for a in fn.node.args.posonlyargs + fn.node.args.args]
    if argnames and argnames[0] == "self":
        argnames = argnames[1:]
    joined: dict[str, Value] = {}
    complete: dict[str, bool] = {}
    for args, kwargs in calls:
        seen: dict[str, Value] = {}
        for i, v in enumerate(args):
            if i < len(argnames):
                seen[argnames[i]] = v
        seen.update({k: v for k, v in kwargs.items() if k in argnames})
        for name in argnames:
            if name in seen:
                if name in joined:
                    joined[name] = joined[name].join(seen[name])
                else:
                    joined[name] = seen[name]
                complete.setdefault(name, True)
            else:
                complete[name] = False
    # only refine parameters observed at every call site
    return {k: v for k, v in joined.items() if complete.get(k)} or None
