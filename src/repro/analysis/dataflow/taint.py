"""TNT001/TNT002: untrusted-input taint tracking for wire-facing code.

Frame payloads arrive from the network: every byte a peer sends — and
every length, count, opcode or key decoded from those bytes — is
attacker-controlled until a bounds check validates it.  The protocol
module's documented discipline ("a hostile length prefix never
allocates", the 64 MiB ``DEFAULT_MAX_FRAME`` cap, the ``MAX_STEPS``
chain cap) is exactly a taint property, so this pass proves it
mechanically instead of trusting the docstring.

Sources (set the :attr:`Value.tainted` bit):

* parameters named like wire buffers (``payload``, ``buf``, ``header``,
  ``blob``, ``frame``, ``raw``, ``packet``, ``body``, ``wire``) and
  ``self.*`` fields initialized from them;
* results of stream reads: ``reader.readexactly`` / ``read`` /
  ``readuntil`` / ``readline`` / ``recv``;
* anything the engine derives from a tainted value: arithmetic,
  ``int()``/``float()`` casts, ``struct.unpack`` of tainted bytes,
  subscripts of tainted buffers.

Sanitizers (clear the bit — handled inside the engine's branch
refinement, so guards in either ``if ok: use`` or ``if bad: raise``
polarity count):

* a finite upper-bound comparison (``n <= 64``, ``count > MAX_STEPS``
  on the raise edge, ``pos + n > len(buf)`` on the raise edge);
* membership in a known table (``op in HANDLERS``);
* constructing a module-local class from the value — ``Opcode(raw)``
  either validates or raises, so enum dispatch sanitizes naturally.

Sinks:

``TNT001`` — a tainted *integer* reaching an allocation-sized operation:
    ``bytearray(n)`` / ``bytes(n)``, ``np.empty``/``zeros``/``ones``/
    ``full``/``frombuffer(count=)``/``fromiter``, a slice bound, or the
    byte count of a further ``readexactly``/``read``.  Tainted *bytes*
    flowing into ``bytes(blob)`` are fine — only sizes allocate.
``TNT002`` — a tainted value used as a dispatch or store key without
    validation: subscripting a handler/dispatch/registry table (or an
    ALL-CAPS module table), ``getattr`` with a tainted name, or a
    ``get``/``pop``/``put`` keyed into a store-like receiver.

The pass only runs on files tagged ``wire`` (the ``repro.service``
tree, loose fixture files, or anything opting in with a
``# szops-lint-scope: wire`` header): taint names like ``buf`` are
meaningful at trust boundaries, noise in a kernel.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Mapping, Optional

from repro.analysis.dataflow.engine import (
    Interpreter,
    ModuleContext,
    State,
    analyze_module,
    path_of,
    terminal_name,
)
from repro.analysis.dataflow.lattice import (
    KIND_I64,
    KIND_PYINT,
    Interval,
    Value,
)
from repro.analysis.findings import Finding

__all__ = ["taint_findings", "TaintPass"]

_INT_KINDS = (KIND_PYINT, KIND_I64)

#: Parameter names treated as wire input at function entry.
_TAINT_PARAMS = frozenset(
    {"payload", "blob", "buf", "frame", "header", "raw", "packet", "body", "wire"}
)
#: Stream-read methods whose *result* is wire bytes (and whose size
#: argument is itself a TNT001 sink).
_SOURCE_METHS = frozenset({"readexactly", "readuntil", "readline", "read", "recv"})
_NP_ALLOC = frozenset({"empty", "zeros", "ones", "full", "frombuffer", "fromiter"})
_NUMPY_ROOTS = frozenset({"np", "numpy"})
_DISPATCH_HINTS = ("handler", "dispatch", "registry", "route", "table", "vtable")
_STORE_HINTS = ("store", "registry", "cache")
_STORE_KEY_METHS = frozenset({"get", "pop", "delete", "remove", "fetch", "put"})
#: Methods whose result is *derived from* the receiver's bytes: taint
#: flows through (``payload[4:].decode()`` is still wire input).
_DERIVE_METHS = frozenset(
    {"decode", "strip", "lstrip", "rstrip", "lower", "upper", "split", "hex", "tobytes"}
)


def _dispatchish(path: str) -> bool:
    t = terminal_name(path)
    return t.isupper() or any(h in t.lower() for h in _DISPATCH_HINTS)


def _storeish(path: str) -> bool:
    t = terminal_name(path).lower()
    return any(h in t for h in _STORE_HINTS)


def _tainted_fields(ctx: ModuleContext) -> dict[str, frozenset[str]]:
    """Per class: ``self.<attr>`` fields initialized from wire params."""
    out: dict[str, frozenset[str]] = {}
    for cname, cls in ctx.classes.items():
        init = next(
            (
                i
                for i in cls.body
                if isinstance(i, ast.FunctionDef) and i.name == "__init__"
            ),
            None,
        )
        if init is None:
            continue
        fields = set()
        for stmt in ast.walk(init):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Attribute)
                and isinstance(stmt.targets[0].value, ast.Name)
                and stmt.targets[0].value.id == "self"
                and any(
                    isinstance(n, ast.Name) and n.id in _TAINT_PARAMS
                    for n in ast.walk(stmt.value)
                )
            ):
                fields.add(stmt.targets[0].attr)
        if fields:
            out[cname] = frozenset(fields)
    return out


class TaintPass(Interpreter):
    """TNT001/TNT002 over one wire-tagged module."""

    def __init__(
        self,
        ctx: ModuleContext,
        summaries: Optional[Mapping[str, Value]] = None,
        source_path: str = "<module>",
    ) -> None:
        super().__init__(ctx, summaries, source_path=source_path)
        self._fields = _tainted_fields(ctx)

    # ------------------------------------------------------------------ sources

    def seed(self, path: str) -> Value:
        v = super().seed(path)
        if "." not in path and "[" not in path and path in _TAINT_PARAMS:
            return v.with_tainted(True)
        if (
            path.startswith("self.")
            and self.current is not None
            and self.current.class_name
        ):
            attr = path[len("self.") :]
            if attr in self._fields.get(self.current.class_name, frozenset()):
                return v.with_tainted(True)
        return v

    # ------------------------------------------------------------------ sinks

    def on_call(
        self,
        node: ast.Call,
        func_path: Optional[str],
        args: list[Value],
        kwargs: dict[str, Value],
        state: State,
    ) -> Optional[Value]:
        meth = node.func.attr if isinstance(node.func, ast.Attribute) else ""

        if func_path in ("bytearray", "bytes") and args:
            self._check_size(node, args[0], f"{func_path}()")
        if meth in _SOURCE_METHS and args:
            self._check_size(node, args[0], f".{meth}() byte count")
        if func_path is not None:
            root = func_path.split(".", 1)[0]
            leaf = func_path.rsplit(".", 1)[-1]
            if root in _NUMPY_ROOTS and leaf in _NP_ALLOC:
                if args:
                    self._check_size(node, args[0], f"np.{leaf}() shape")
                count = kwargs.get("count")
                if count is not None:
                    self._check_size(node, count, f"np.{leaf}(count=)")
        if func_path == "getattr" and len(args) >= 2 and args[1].tainted:
            self.report(
                "TNT002",
                node,
                "attacker-controlled attribute name reaches getattr() "
                "without validation: a hostile frame selects which "
                "attribute the server resolves",
                hint="validate the name against an explicit allow-list "
                "(membership in a known table clears the taint)",
            )
        if (
            meth in _STORE_KEY_METHS
            and args
            and args[0].tainted
            and args[0].kind not in _INT_KINDS
        ):
            recv = path_of(node.func.value) if isinstance(node.func, ast.Attribute) else None
            if recv is not None and _storeish(recv):
                self.report(
                    "TNT002",
                    node,
                    f"attacker-controlled key reaches `{recv}.{meth}()` "
                    "without validation: a hostile frame addresses "
                    "arbitrary store entries",
                    hint="validate the key (length/charset or membership) "
                    "before using it to address the store",
                )

        if meth in _SOURCE_METHS:
            # the bytes read from the stream are wire input
            return Value(tainted=True)
        if meth in _DERIVE_METHS and isinstance(node.func, ast.Attribute):
            rp = path_of(node.func.value)
            rv = state.env.get(rp) if rp is not None else None
            if rv is not None and rv.tainted:
                return Value(tainted=True)
        return None

    def _check_size(self, node: ast.Call, size: Value, what: str) -> None:
        if size.tainted and size.kind in _INT_KINDS:
            self.report(
                "TNT001",
                node,
                f"attacker-controlled size reaches {what} with no bounds "
                "check on any path: a hostile length prefix drives the "
                "allocation directly",
                hint="compare the value against an explicit cap (e.g. "
                "DEFAULT_MAX_FRAME) before allocating; the guard may "
                "raise or branch, either polarity counts",
            )

    def check_slice(self, node: ast.Subscript, bounds: list[Value], state: State) -> None:
        # no int-kind gate here: slice bounds are integers by
        # construction, so any tainted bound is a tainted size even when
        # the kind lattice has lost precision (e.g. joined with OBJ).
        for b in bounds:
            if b.tainted:
                self.report(
                    "TNT001",
                    node,
                    "attacker-controlled slice bound with no bounds check "
                    "on any path: a hostile length walks past the intended "
                    "byte budget",
                    hint="guard the bound against the buffer length (e.g. "
                    "`if pos + n > len(buf): raise`) before slicing",
                )
                return

    def check_index(self, node: ast.Subscript, index: Value, state: State) -> None:
        if not index.tainted:
            return
        base = path_of(node.value)
        if base is not None and _dispatchish(base):
            self.report(
                "TNT002",
                node,
                f"attacker-controlled value indexes the dispatch table "
                f"`{base}` without validation: an unknown opcode must be "
                "rejected, not looked up",
                hint="validate first — enum construction (`Opcode(raw)`) "
                "or membership (`raw in TABLE`) both clear the taint",
            )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def taint_findings(
    source_path: str,
    source: str,
    tree: Optional[ast.Module] = None,
    ctx: Optional[ModuleContext] = None,
    wire: Optional[bool] = None,
) -> list[Finding]:
    """Run the taint pass (TNT001/TNT002) over one module.

    ``wire`` overrides the scope-tag gate; when ``None`` the file's scope
    tags decide (only ``wire``-tagged files are analyzed).
    """
    if wire is None:
        from repro.analysis.linter import scope_tags

        wire = "wire" in scope_tags(Path(source_path), source)
    if not wire:
        return []
    if tree is None:
        try:
            tree = ast.parse(source, filename=source_path)
        except SyntaxError:
            return []
    if ctx is None:
        ctx = ModuleContext.build(source_path, tree)

    def make(c: ModuleContext, summaries: Mapping[str, Value]) -> Interpreter:
        return TaintPass(c, summaries, source_path=source_path)

    findings, _ = analyze_module(source_path, tree, make, ctx=ctx)
    return findings
