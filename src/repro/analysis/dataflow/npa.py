"""NPA001–NPA006: NumPy array-semantics proofs for the kernel layer.

The pass rides the array-value lattice (:class:`~repro.analysis.dataflow.
lattice.ArrayInfo`): symbolic buffer identity with view provenance,
dtype + itemsize layout facts, a proven element-count divisor, extent
intervals, writability, and an initialized bit.  Each rule fires only on
*proven* violations or genuinely unprovable may-alias writes — the noise
budget is zero unsuppressed findings over the real kernels.

==========  ==============================================================
``NPA001``  in-place write that may alias a live input: the stored value
            is (or the target is) a view of the same base buffer
``NPA002``  ``.view(dtype)`` reinterpretation whose byte count is not
            provably a multiple of the new itemsize
``NPA003``  index write whose proven index interval exceeds the
            destination's exactly-known extent
``NPA004``  write to a possibly non-writable array (``frombuffer``,
            ``broadcast_to`` results)
``NPA005``  read of ``np.empty`` contents never written on any path
``NPA006``  silent-wraparound narrowing: a value whose proven range
            exceeds the target integer dtype's range
==========  ==============================================================

Soundness caveats (documented in ``docs/ANALYSIS.md``): buffer identity
is name/site-based, so two views reached through unpathed expressions
can silently alias; ``.nbytes``-based divisibility guards are credited
as element-count guards; and the initialized bit joins to "maybe" at
path merges, so only *always-uninitialized* reads fire.
"""

from __future__ import annotations

import ast
from typing import Mapping, Optional, Union

from repro.analysis.dataflow.engine import (
    INT_DTYPE_RANGES,
    Interpreter,
    ModuleContext,
    analyze_module,
)
from repro.analysis.dataflow.lattice import (
    INIT_NO,
    INT64_MAX,
    INT64_MIN,
    KIND_BOOL,
    KIND_I64,
    KIND_PYINT,
    ArrayInfo,
    Interval,
    Value,
)
from repro.analysis.findings import Finding

__all__ = ["NpaPass", "npa_findings"]

#: value kinds whose interval is an integer fact (NPA006 narrowing).
_INT_KINDS = (KIND_PYINT, KIND_I64, KIND_BOOL)


def _fmt_bound(b: Union[int, float, None]) -> str:
    return "inf" if b is None else str(b)


def _fmt(itv: Interval) -> str:
    if itv.empty:
        return "[]"
    lo = "-inf" if itv.lo is None else str(itv.lo)
    return f"[{lo}, {_fmt_bound(itv.hi)}]"


def _describe(arr: ArrayInfo) -> str:
    bits = []
    if arr.provenance:
        bits.append(arr.provenance)
    if arr.view:
        bits.append("view")
    if arr.dtype:
        bits.append(arr.dtype)
    return " ".join(bits) if bits else "array"


class NpaPass(Interpreter):
    """Array shape/aliasing/view-safety pass (NPA001–NPA006)."""

    track_arrays = True

    def seed(self, path: str) -> Value:
        # every unknown input may be an array: give it a distinct symbolic
        # buffer so view-of-input writes are traceable back to it
        v = super().seed(path)
        if v.arr is None:
            v = v.with_arr(ArrayInfo(base=f"seed:{path}"))
        return v

    # ------------------------------------------------------------ writes

    def check_array_write(
        self,
        node: ast.AST,
        path: Optional[str],
        target: Value,
        value: Value,
        index: Optional[Value],
        state: object,
    ) -> None:
        ta = target.arr
        if ta is None:
            return
        name = path or "<array>"
        # NPA004: the buffer is not provably writable
        if not ta.writable:
            self.report(
                "NPA004",
                node,
                f"write into `{name}` which may not be writable "
                f"({_describe(ta)} buffers are read-only)",
                hint=(
                    "copy before mutating (`arr = np.frombuffer(...).copy()`) "
                    "or allocate a fresh destination with np.empty/zeros"
                ),
            )
        # NPA001: the stored value aliases the destination buffer
        va = value.arr
        if (
            va is not None
            and ta.base is not None
            and va.base == ta.base
            and (ta.view or va.view)
        ):
            self.report(
                "NPA001",
                node,
                f"in-place write into `{name}` from a view of the same "
                f"buffer ({ta.base}): overlapping read/write order is "
                "undefined",
                hint=(
                    "materialize the source first (`src = src.copy()`) or "
                    "restructure so source and destination are distinct buffers"
                ),
            )
        # NPA003: proven out-of-bounds index write
        if (
            index is not None
            and not index.itv.empty
            and ta.nelems.lo is not None
            and ta.nelems.lo == ta.nelems.hi
        ):
            n = ta.nelems.lo
            hi = index.itv.hi
            lo = index.itv.lo
            if (hi is not None and hi >= n) or (lo is not None and lo < -n):
                self.report(
                    "NPA003",
                    node,
                    f"index write into `{name}` out of bounds: index range "
                    f"{_fmt(index.itv)} exceeds the proven extent {n}",
                    hint="clamp or mask the index array before scattering",
                )
        # NPA006: proven silent wraparound on assignment
        self._check_narrowing(node, ta.dtype, value, f"assignment into `{name}`")

    def _check_narrowing(
        self, node: ast.AST, dtype: Optional[str], value: Value, what: str
    ) -> None:
        if dtype is None or value.kind not in _INT_KINDS:
            return
        rng = INT_DTYPE_RANGES.get(dtype)
        if rng is None:
            return
        itv = value.itv
        if itv.empty or itv.lo is None or itv.hi is None:
            # unknown magnitude: narrowing is assumed intentional masking
            return
        if itv.lo <= INT64_MIN and itv.hi >= INT64_MAX:
            # the full int64 range is the engine's unknown-int ⊤, not a
            # proven magnitude — treat it like an unknown interval
            return
        if itv.lo >= rng[0] and itv.hi <= rng[1]:
            return
        self.report(
            "NPA006",
            node,
            f"{what} silently wraps: value range {_fmt(itv)} exceeds "
            f"{dtype} [{rng[0]}, {rng[1]}]",
            hint=(
                "mask explicitly (`x & 0xFF`) if wraparound is intended, "
                "or widen the destination dtype"
            ),
        )

    # ------------------------------------------------------------ views

    def check_view_cast(
        self,
        node: ast.AST,
        src: Value,
        dtype_name: str,
        itemsize: Optional[int],
        state: object,
    ) -> None:
        sa = src.arr
        if sa is None or itemsize is None or sa.itemsize is None:
            return  # unknown layout on either side: not provable either way
        s, k = sa.itemsize, itemsize
        if k == s:
            return
        if k < s and s % k == 0:
            return  # widening each element into more, smaller elements
        # growing the itemsize: total bytes must divide by the new width
        byte_multiple = sa.count_multiple * s
        if byte_multiple % k == 0:
            return
        self.report(
            "NPA002",
            node,
            f".view({dtype_name}) reinterprets a {s}-byte-element buffer "
            f"whose total byte count is only provably a multiple of "
            f"{byte_multiple}, not of {k}",
            hint=(
                "prove divisibility first (`if buf.size % "
                f"{max(k // s, 1)}: raise`) or allocate with a constant "
                "trailing dim (`np.empty((n, "
                f"{max(k // s, 1)}), ...)`) so the reshape carries the proof"
            ),
        )

    def check_astype(
        self,
        node: ast.AST,
        src: Value,
        dtype_name: str,
        itemsize: Optional[int],
        state: object,
    ) -> None:
        # NPA006 also covers proven-wrapping astype narrowing (the
        # uint32 → uint16 downshift pattern, complementing SZL101/102)
        self._check_narrowing(node, dtype_name, src, f".astype({dtype_name})")

    # ------------------------------------------------------------ reads

    def check_array_read(self, node: ast.AST, value: Value, state: object) -> None:
        va = value.arr
        if va is None or va.init != INIT_NO:
            # "maybe": written on some path — weak updates can't tell which
            return
        self.report(
            "NPA005",
            node,
            "read of np.empty contents that are never written on any "
            "path to this use",
            hint="use np.zeros, or write every element before the first read",
        )


def npa_findings(
    source_path: str,
    source: str,
    tree: Optional[ast.Module] = None,
    ctx: Optional[ModuleContext] = None,
) -> list[Finding]:
    """Run the array-semantics pass over one module's source.

    ``tree``/``ctx`` let the driver share one parse and one module index
    across every pass over the same file.
    """
    if tree is None:
        try:
            tree = ast.parse(source, filename=source_path)
        except SyntaxError:
            return []

    def make(c: ModuleContext, summaries: Mapping[str, Value]) -> Interpreter:
        return NpaPass(c, summaries, source_path=source_path)

    findings, _ = analyze_module(source_path, tree, make, ctx=ctx)
    return findings
