"""SZL101/SZL102: dataflow value-range proofs for quantized arithmetic.

``SZL101`` upgrades the syntactic SZL001: an int64 arithmetic result
involving a quantized plane is flagged only when the engine cannot prove
the result interval fits int64 — a kernel guarded by the
``shift_outliers`` idiom (``peak = |x|.max() + |y|; if peak >= Q_LIMIT:
raise``) is *proven* safe and needs no suppression.

``SZL102`` upgrades the syntactic SZL002 for casts: ``x.astype(int64)``
on a float value is flagged unless the engine proved both finiteness
(``np.all(np.isfinite(x))`` guard) and a bound within int64 (an
``np.abs(x).max() >= bound`` guard) — NaN alone slips magnitude
comparisons, so both arms are required.
"""

from __future__ import annotations

import ast
from typing import Mapping, Optional, Union

from repro.analysis.dataflow.engine import Interpreter, ModuleContext, analyze_module
from repro.analysis.dataflow.lattice import KIND_FLOAT, Interval, Value
from repro.analysis.findings import Finding

__all__ = ["range_findings", "RangesPass"]

_OP_SYMBOL = {"Add": "+", "Sub": "-", "Mult": "*", "Pow": "**", "LShift": "<<"}


def _fmt_bound(b: Union[int, float, None], *, low: bool = False) -> str:
    if b is None:
        return "-inf" if low else "inf"
    if isinstance(b, int) and abs(b) >= 1 << 16:
        sign = "-" if b < 0 else ""
        mag = abs(b)
        if mag & (mag - 1) == 0:
            return f"{sign}2^{mag.bit_length() - 1}"
    return str(b)


def _fmt(itv: Interval) -> str:
    if itv.empty:
        return "[]"
    return f"[{_fmt_bound(itv.lo, low=True)}, {_fmt_bound(itv.hi)}]"


class RangesPass(Interpreter):
    """Value-range + dtype lattice pass (SZL101, SZL102)."""

    def check_int_arith(
        self,
        node: ast.AST,
        opname: str,
        lv: Value,
        rv: Value,
        itv: Interval,
        state: object,
    ) -> None:
        if itv.empty or itv.fits_int64():
            return
        if not (lv.quantized or rv.quantized):
            return
        sym = _OP_SYMBOL.get(opname, opname)
        self.report(
            "SZL101",
            node,
            f"quantized int64 `{sym}` may overflow: result range "
            f"{_fmt(lv.itv)} {sym} {_fmt(rv.itv)} is not provably within int64",
            hint=(
                "guard the peak magnitude before the operation "
                "(`peak = int(np.abs(x).max()) + abs(y); if peak >= int(Q_LIMIT): raise`, "
                "as in shift_outliers) or widen to float64/python int first"
            ),
        )

    def check_cast(self, node: ast.AST, src: Value, dst_kind: str, state: object) -> None:
        if src.kind != KIND_FLOAT or src.itv.empty:
            return
        if src.finite and src.itv.fits_int64():
            return
        if not src.finite:
            why = "the value is not proven finite (NaN/inf casts are undefined)"
            how = "reject non-finite input first: `if not np.all(np.isfinite(x)): raise`"
        else:
            why = f"the value range {_fmt(src.itv)} is not provably within int64"
            how = "bound the magnitude first: `if np.abs(x).max() >= float(Q_LIMIT): raise`"
        self.report(
            "SZL102",
            node,
            f"float → int64 cast is unguarded: {why}",
            hint=f"{how}; both guards are needed — NaN slips magnitude comparisons",
        )


def range_findings(
    source_path: str,
    source: str,
    tree: Optional[ast.Module] = None,
    ctx: Optional[ModuleContext] = None,
) -> list[Finding]:
    """Run the value-range pass over one module's source.

    ``tree``/``ctx`` let the driver share one parse and one module index
    across every pass over the same file.
    """
    if tree is None:
        try:
            tree = ast.parse(source, filename=source_path)
        except SyntaxError:
            return []

    def make(c: ModuleContext, summaries: Mapping[str, Value]) -> Interpreter:
        return RangesPass(c, summaries, source_path=source_path)

    findings, _ = analyze_module(source_path, tree, make, ctx=ctx)
    return findings
