"""Value lattices for the dataflow engine.

Two layers:

:class:`Interval`
    a classic interval domain over the extended number line
    (``None`` endpoints are ∓∞), with an explicit bottom element for
    "no value yet" — used for the element range of uninitialized
    (``np.empty``) arrays, whose abstract content is ⊥ until written.

:class:`Value`
    an abstract value: a *kind* (python int, int64 array/scalar, float,
    bool, opaque object), the element interval, the quantized-plane
    taint (this value carries quantization bins whose overflow would be
    silent data corruption), a finiteness fact for floats, a symbolic
    *origin* (``('absmax', path)`` etc.) that branch refinement keys on,
    an untrusted-input ``tainted`` bit (wire bytes and anything derived
    from them, cleared by bounds-check refinement — the TNT passes),
    and an optional constructor class name (used by the lock-order and
    shm-lifetime passes to type objects).

A third layer, :class:`ArrayInfo`, is the array-value lattice the NPA
pass family (``npa.py``) keys on: base-buffer identity with view
provenance, dtype + itemsize, a proven element-count divisor, a symbolic
extent, writability, and a tri-state initialized bit (``np.empty`` vs
``zeros``).  It rides along on :class:`Value` as the optional ``arr``
field.

All are immutable; joins return new objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Union

__all__ = [
    "INT64_MAX",
    "INT64_MIN",
    "Q_LIMIT",
    "Q_MAX",
    "Interval",
    "ArrayInfo",
    "Value",
    "KIND_PYINT",
    "KIND_I64",
    "KIND_FLOAT",
    "KIND_BOOL",
    "KIND_OBJ",
    "INIT_YES",
    "INIT_NO",
    "INIT_MAYBE",
]

INT64_MIN = -(1 << 63)
INT64_MAX = (1 << 63) - 1

#: The quantized-plane guard band: every stored bin satisfies |q| < Q_LIMIT.
Q_LIMIT = 1 << 62
Q_MAX = Q_LIMIT - 1

Bound = Optional[Union[int, float]]

# Value kinds.  PYINT is an arbitrary-precision python int (cannot
# overflow); I64 is a numpy int64 array or scalar (wraps silently);
# FLOAT covers float scalars and float arrays; OBJ is anything opaque.
KIND_PYINT = "pyint"
KIND_I64 = "i64"
KIND_FLOAT = "float"
KIND_BOOL = "bool"
KIND_OBJ = "obj"


def _min(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return a if a <= b else b


def _max(a: Bound, b: Bound) -> Bound:
    if a is None or b is None:
        return None
    return a if a >= b else b


@dataclass(frozen=True)
class Interval:
    """Closed interval [lo, hi]; ``None`` endpoints are infinite.

    ``empty=True`` is the bottom element (identity of :meth:`join`,
    absorbing for arithmetic).
    """

    lo: Bound = None
    hi: Bound = None
    empty: bool = False

    # -------------------------------------------------------------- factories

    @staticmethod
    def top() -> "Interval":
        return _TOP

    @staticmethod
    def bottom() -> "Interval":
        return _BOTTOM

    @staticmethod
    def const(x: Union[int, float]) -> "Interval":
        return Interval(x, x)

    # -------------------------------------------------------------- predicates

    @property
    def is_top(self) -> bool:
        return not self.empty and self.lo is None and self.hi is None

    def within(self, lo: Union[int, float], hi: Union[int, float]) -> bool:
        """True when every concrete value of this interval lies in [lo, hi]."""
        if self.empty:
            return True
        if self.lo is None or self.hi is None:
            return False
        return lo <= self.lo and self.hi <= hi

    def fits_int64(self) -> bool:
        return self.within(INT64_MIN, INT64_MAX)

    # -------------------------------------------------------------- lattice

    def join(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(_min(self.lo, other.lo), _max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return _BOTTOM
        lo = self.lo if other.lo is None else (other.lo if self.lo is None else max(self.lo, other.lo))
        hi = self.hi if other.hi is None else (other.hi if self.hi is None else min(self.hi, other.hi))
        if lo is not None and hi is not None and lo > hi:
            return _BOTTOM
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Widening: endpoints that moved outward jump to infinity."""
        if self.empty:
            return newer
        if newer.empty:
            return self
        lo = self.lo if (self.lo is not None and newer.lo is not None and newer.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and newer.hi is not None and newer.hi <= self.hi) else None
        return Interval(lo, hi)

    # -------------------------------------------------------------- arithmetic

    def add(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return _BOTTOM
        lo = None if (self.lo is None or other.lo is None) else self.lo + other.lo
        hi = None if (self.hi is None or other.hi is None) else self.hi + other.hi
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def neg(self) -> "Interval":
        if self.empty:
            return _BOTTOM
        return Interval(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def mul(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return _BOTTOM
        if self == Interval.const(0) or other == Interval.const(0):
            return Interval.const(0)
        inf = float("inf")
        a_lo = -inf if self.lo is None else self.lo
        a_hi = inf if self.hi is None else self.hi
        b_lo = -inf if other.lo is None else other.lo
        b_hi = inf if other.hi is None else other.hi
        products = []
        for x in (a_lo, a_hi):
            for y in (b_lo, b_hi):
                if (x in (inf, -inf) and y == 0) or (y in (inf, -inf) and x == 0):
                    products.append(0)
                else:
                    products.append(x * y)
        lo, hi = min(products), max(products)
        return Interval(None if lo == -inf else lo, None if hi == inf else hi)

    def abs(self) -> "Interval":
        if self.empty:
            return _BOTTOM
        if self.lo is not None and self.lo >= 0:
            return self
        if self.hi is not None and self.hi <= 0:
            return self.neg()
        mag = _max(
            None if self.lo is None else -self.lo,
            self.hi,
        )
        return Interval(0, mag)

    def expand(self, pad: Union[int, float]) -> "Interval":
        """Pad both endpoints outward (rounding slop for floor/rint/ceil)."""
        if self.empty or self.is_top:
            return self
        return Interval(
            None if self.lo is None else self.lo - pad,
            None if self.hi is None else self.hi + pad,
        )


_TOP = Interval(None, None)
_BOTTOM = Interval(empty=True)


#: Tri-state initialization for the array lattice (a flat lattice with
#: ``INIT_MAYBE`` on top): "no" means allocated by ``np.empty`` and not
#: stored to on any path reaching this point.
INIT_YES = "yes"
INIT_NO = "no"
INIT_MAYBE = "maybe"


@dataclass(frozen=True)
class ArrayInfo:
    """Array-value lattice element: buffer identity, layout, and state.

    What the NPA pass family needs to know about a numpy array:

    base
        symbolic identity of the owning buffer — an allocation site
        (``"f:12:8"``) or a seed path (``"seed:q"``).  Two values with
        equal non-``None`` bases *may* alias; ``None`` is "unknown
        buffer" and never aliases provably.
    view
        this value is a view of ``base`` (slice, ``reshape``,
        ``.view()``, ``frombuffer``, ``ndarray(buffer=...)``) rather
        than the owning array itself.
    provenance
        the constructor that introduced the buffer (``"empty"``,
        ``"frombuffer"``, ``"broadcast_to"``, ...), for messages.
    dtype / itemsize
        element type name and width in bytes (``None`` = unknown).
    count_multiple
        proven divisor of the element count (1 = nothing proven).
        Together with ``itemsize`` this proves total-byte divisibility
        for ``.view()`` reinterpretation: an allocation shaped
        ``(n, 8)`` has ``count_multiple == 8``, and a
        ``buf.size % 8 == 0`` guard refines it through the ``sizemod``
        origin.
    nelems
        interval of the total element count (extent checks on
        fancy-index writes key on an exactly-known extent).
    writable
        ``False`` when the buffer may be read-only (``frombuffer`` over
        bytes, broadcast results).
    init
        tri-state initialization; joins of a written and an unwritten
        path give ``INIT_MAYBE``.
    """

    base: Optional[str] = None
    view: bool = False
    provenance: Optional[str] = None
    dtype: Optional[str] = None
    itemsize: Optional[int] = None
    count_multiple: int = 1
    nelems: Interval = _TOP
    writable: bool = True
    init: str = INIT_YES

    @property
    def byte_multiple(self) -> Optional[int]:
        """Proven divisor of the total byte count, or ``None``."""
        if self.itemsize is None:
            return None
        return self.count_multiple * self.itemsize

    def join(self, other: "ArrayInfo") -> "ArrayInfo":
        return ArrayInfo(
            base=self.base if self.base == other.base else None,
            view=self.view or other.view,
            provenance=self.provenance if self.provenance == other.provenance else None,
            dtype=self.dtype if self.dtype == other.dtype else None,
            itemsize=self.itemsize if self.itemsize == other.itemsize else None,
            count_multiple=math.gcd(self.count_multiple, other.count_multiple),
            nelems=self.nelems.join(other.nelems),
            writable=self.writable and other.writable,
            init=self.init if self.init == other.init else INIT_MAYBE,
        )

    def as_view(self) -> "ArrayInfo":
        """The same buffer seen through a derived window (slice/reshape)."""
        return replace(self, view=True)

    def initialized(self) -> "ArrayInfo":
        return self if self.init == INIT_YES else replace(self, init=INIT_YES)


@dataclass(frozen=True)
class Value:
    """Abstract value: kind × interval × taint × facts × symbolic origin."""

    kind: str = KIND_OBJ
    itv: Interval = _TOP
    quantized: bool = False
    finite: bool = False
    #: Symbolic origin for branch refinement, e.g. ``('absmax', 'q')`` for
    #: ``np.abs(q).max()`` or ``('abssum', 'out', 'rho')`` for the
    #: ``shift_outliers``-style peak expression.  ``('id', path)`` marks a
    #: direct load so refinement can narrow the environment binding.
    origin: Optional[tuple[str, ...]] = None
    #: Class name when this value is a freshly constructed instance of a
    #: class known to the current pass (lock-order / shm-lifetime typing).
    ctor: Optional[str] = None
    #: Untrusted-input taint: this value is wire bytes (or a length/index
    #: arithmetically derived from them) that no bounds check has
    #: validated yet.  Set by the taint pass's sources, propagated by the
    #: engine through arithmetic/casts/subscripts, cleared by comparison
    #: refinement (an upper-bound guard is a validation fact).
    tainted: bool = False
    #: Array-value lattice element (buffer identity, layout, init state);
    #: ``None`` when the value is not known to be an array.  Populated by
    #: the engine's numpy transfer functions and checked by the NPA pass.
    arr: Optional[ArrayInfo] = None

    # -------------------------------------------------------------- factories

    @staticmethod
    def obj(ctor: Optional[str] = None, origin: Optional[tuple[str, ...]] = None) -> "Value":
        return Value(KIND_OBJ, _TOP, ctor=ctor, origin=origin)

    @staticmethod
    def pyint(itv: Interval = _TOP) -> "Value":
        return Value(KIND_PYINT, itv)

    @staticmethod
    def i64(itv: Interval = _TOP, quantized: bool = False) -> "Value":
        return Value(KIND_I64, itv, quantized=quantized)

    @staticmethod
    def flt(itv: Interval = _TOP, finite: bool = False) -> "Value":
        return Value(KIND_FLOAT, itv, finite=finite)

    @staticmethod
    def quantized_plane() -> "Value":
        """Seed for a quantized-name load: int64, |q| <= Q_MAX, tainted."""
        return Value(KIND_I64, Interval(-Q_MAX, Q_MAX), quantized=True)

    # -------------------------------------------------------------- lattice

    def join(self, other: "Value") -> "Value":
        kind = self.kind if self.kind == other.kind else _join_kind(self.kind, other.kind)
        return Value(
            kind=kind,
            itv=self.itv.join(other.itv),
            quantized=self.quantized or other.quantized,
            # An empty-interval side contributes no concrete values, so it
            # cannot invalidate the other side's finiteness proof.
            finite=(self.finite or self.itv.empty)
            and (other.finite or other.itv.empty),
            origin=self.origin if self.origin == other.origin else None,
            ctor=self.ctor if self.ctor == other.ctor else None,
            tainted=self.tainted or other.tainted,
            arr=(
                self.arr.join(other.arr)
                if self.arr is not None and other.arr is not None
                else None
            ),
        )

    def with_itv(self, itv: Interval) -> "Value":
        return replace(self, itv=itv)

    def with_origin(self, origin: Optional[tuple[str, ...]]) -> "Value":
        return replace(self, origin=origin)

    def with_tainted(self, tainted: bool) -> "Value":
        return replace(self, tainted=tainted)

    def with_arr(self, arr: Optional[ArrayInfo]) -> "Value":
        return replace(self, arr=arr)


def _join_kind(a: str, b: str) -> str:
    numeric = {KIND_PYINT, KIND_I64, KIND_FLOAT, KIND_BOOL}
    if a in numeric and b in numeric:
        # any float operand makes the result float; any i64 operand makes
        # an all-int result an i64 (numpy promotion dominates python ints)
        if KIND_FLOAT in (a, b):
            return KIND_FLOAT
        if KIND_I64 in (a, b):
            return KIND_I64
        return KIND_PYINT
    return KIND_OBJ
