"""Dataflow analysis engine: abstract interpretation for SZOps invariants.

PR 2's ``szops-lint`` rules are syntactic: SZL001 pattern-matches AST
shapes ("an AugAssign on a quantized name without a widening cast") and
must be suppressed at every site that *is* guarded, because a pattern
matcher cannot see the guard.  This package upgrades the hot invariants to
*dataflow-based* verification: a per-function abstract interpreter over
the CPython AST (:mod:`~repro.analysis.dataflow.engine`) tracks value
ranges, dtypes and symbolic guard facts through assignments, branches,
loops and module-local calls (with call summaries), and four passes share
it:

``SZL101`` / ``SZL102`` (:mod:`~repro.analysis.dataflow.ranges`)
    value-range + dtype lattice proofs that quantized int64 arithmetic
    stays inside int64 given the ``|q| < Q_LIMIT`` invariant, and that
    float → int casts are guarded (finite + bounded).  Supersedes the
    syntactic SZL001/SZL002 when the dataflow suite runs.
``SZL103`` (:mod:`~repro.analysis.dataflow.errorprop`)
    rederives each registered operation's worst-case error-bound
    transformer from its kernel (composing the symbolic error effects of
    the quantization primitives it reaches) and cross-checks the module's
    declared ``ERROR_PROPAGATION`` mode.
``LCK002`` (:mod:`~repro.analysis.dataflow.lockorder`)
    builds the acquires-while-holding relation over every ``self._lock``
    in the analyzed files and rejects cycles — including self-cycles,
    since ``threading.Lock`` is not reentrant.
``SHM001`` / ``SHM002`` (:mod:`~repro.analysis.dataflow.shmlife`)
    tracks ``ShmArena`` / ``SharedMemory(create=True)`` segments through
    acquire, use and release along all paths *including exception edges*,
    flagging use-after-release and leak-on-raise/-on-return.
``ASY001``–``ASY005`` (:mod:`~repro.analysis.dataflow.asyncsafety`)
    async-safety for the service layer: the engine models every
    ``await`` / ``async with`` / ``async for`` step as an interleaving
    point, and the pass checks await-point atomicity of guarded
    attributes, sync locks held across awaits, blocking calls on the
    event-loop thread, dropped coroutine/task handles, and deadline
    propagation (unbounded awaits outside ``asyncio.wait_for``).
``NPA001``–``NPA006`` (:mod:`~repro.analysis.dataflow.npa`)
    NumPy array semantics for the kernel layer: an array-value lattice
    (buffer identity + view provenance, dtype/itemsize layout, proven
    element-count divisors, extents, writability, initialized bit)
    proves in-place writes don't alias live inputs, ``.view()``
    reinterpretations byte-check, index writes stay in bounds, read-only
    buffers aren't mutated, ``np.empty`` contents aren't read before the
    first write, and integer narrowing doesn't silently wrap.
``TNT001`` / ``TNT002`` (:mod:`~repro.analysis.dataflow.taint`)
    untrusted-input taint on ``wire``-tagged files: bytes read from the
    network (and lengths/keys derived from them) are tainted until a
    bounds check or membership/enum validation clears them; tainted
    sizes reaching allocations and tainted keys reaching dispatch are
    rejected — mechanically proving the protocol module's frame-cap and
    MAX_STEPS discipline.

All passes emit the shared :class:`~repro.analysis.findings.Finding`
type, honor ``# szops: ignore[...]`` suppressions (applied by the linter
driver), and run via ``python -m repro lint --dataflow``.  Soundness
caveats (what the engine deliberately does not model) are documented in
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

from repro.analysis.dataflow.asyncsafety import asyncsafety_findings
from repro.analysis.dataflow.errorprop import check_error_propagation
from repro.analysis.dataflow.lattice import INT64_MAX, INT64_MIN, Interval, Value
from repro.analysis.dataflow.lockorder import lockorder_findings
from repro.analysis.dataflow.npa import npa_findings
from repro.analysis.dataflow.ranges import range_findings
from repro.analysis.dataflow.shmlife import shm_findings
from repro.analysis.dataflow.taint import taint_findings

__all__ = [
    "INT64_MAX",
    "INT64_MIN",
    "Interval",
    "Value",
    "asyncsafety_findings",
    "check_error_propagation",
    "lockorder_findings",
    "npa_findings",
    "range_findings",
    "shm_findings",
    "taint_findings",
    "DATAFLOW_RULES",
]

#: Rule ids contributed by the dataflow suite (the driver uses this to
#: compute the active-rule set for unused-suppression accounting).
DATAFLOW_RULES = frozenset(
    {
        "SZL101",
        "SZL102",
        "SZL103",
        "LCK002",
        "SHM001",
        "SHM002",
        "ASY001",
        "ASY002",
        "ASY003",
        "ASY004",
        "ASY005",
        "TNT001",
        "TNT002",
        "NPA001",
        "NPA002",
        "NPA003",
        "NPA004",
        "NPA005",
        "NPA006",
    }
)
