"""LCK002: lock-order graph verification over ``self._lock`` usage.

PR 2's ``lockcheck`` (LCK001) proves the single-lock discipline: every
guarded attribute is touched under its class's ``self._lock``.  That says
nothing about *ordering* — two classes whose methods call into each other
while holding their own locks can deadlock even though each class is
individually correct.

This pass builds the **acquires-while-holding** relation across every
analyzed file:

* a lock is identified as ``(ClassName, attr)`` for every instance
  attribute assigned ``threading.Lock()``;
* walking each method lexically with a stack of held locks, acquiring
  ``B`` while holding ``A`` adds the edge ``A → B``;
* self-calls (``self.helper()``) and calls through constructor-typed
  attributes (``self._cache = BlockCache(...)`` in ``__init__`` followed
  by ``self._cache.get()``) propagate the callee's transitive
  acquisitions to the call site, so an edge is found even when the two
  ``with`` statements live in different methods or classes;
* a cycle in the resulting graph — including the self-cycle of acquiring
  a ``threading.Lock`` already held, which self-deadlocks because the
  lock is not reentrant — is reported as LCK002.

The walk is lexical and therefore conservative in a *bounded* way: it
only resolves receivers it can type (``self`` and ctor-typed attributes),
so it cannot invent edges between unrelated locks, and every reported
cycle corresponds to a concrete call path in the analyzed source.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping, Optional

from repro.analysis.findings import Finding

__all__ = ["lockorder_findings"]

#: A lock identity: (class name, instance attribute name).
LockId = tuple[str, str]


def _is_lock_ctor(node: ast.expr) -> bool:
    """``threading.Lock()`` (the non-reentrant kind only — RLock cannot
    self-deadlock and is excluded from the self-cycle rule)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "Lock":
        return True
    if isinstance(func, ast.Name) and func.id == "Lock":
        return True
    return False


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.<attr>`` → attr name, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassInfo:
    """Everything the pass needs to know about one class."""

    def __init__(self, path: str, node: ast.ClassDef) -> None:
        self.path = path
        self.name = node.name
        self.methods: dict[str, ast.FunctionDef] = {}
        self.lock_attrs: set[str] = set()
        #: ``self.X = C(...)`` in ``__init__`` → ``{X: C}``; lets the walk
        #: type method calls through composed objects.
        self.attr_ctor: dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                self.methods[stmt.name] = stmt
        for meth in self.methods.values():
            for sub in ast.walk(meth):
                if not isinstance(sub, ast.Assign):
                    continue
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if _is_lock_ctor(sub.value):
                        self.lock_attrs.add(attr)
                    elif (
                        meth.name == "__init__"
                        and isinstance(sub.value, ast.Call)
                        and isinstance(sub.value.func, ast.Name)
                    ):
                        self.attr_ctor[attr] = sub.value.func.id


class _Walker:
    """Lexical walk of one method with a held-lock stack."""

    def __init__(self, pass_: "_LockOrderPass", cls: _ClassInfo, meth: str) -> None:
        self.pass_ = pass_
        self.cls = cls
        self.meth = meth
        self.held: list[LockId] = []
        #: Locks this method acquires directly (seed for the fixpoint).
        self.acquired: set[LockId] = set()
        #: Deferred call sites: (held snapshot, callee qualname, lineno).
        self.calls: list[tuple[tuple[LockId, ...], str, int]] = []

    def walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With):
            self._walk_with(stmt)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs run later, under an unknown lock set
        self._scan_calls(stmt)
        for body in _stmt_bodies(stmt):
            self.walk_body(body)

    def _walk_with(self, stmt: ast.With) -> None:
        pushed = 0
        for item in stmt.items:
            self._scan_calls_expr(item.context_expr)
            lock = self._lock_of(item.context_expr)
            if lock is not None:
                self.pass_.note_acquire(self, lock, item.context_expr.lineno)
                self.held.append(lock)
                pushed += 1
        self.walk_body(stmt.body)
        del self.held[len(self.held) - pushed :]

    def _lock_of(self, expr: ast.expr) -> Optional[LockId]:
        attr = _self_attr(expr)
        if attr is not None and attr in self.cls.lock_attrs:
            return (self.cls.name, attr)
        return None

    def _scan_calls(self, stmt: ast.stmt) -> None:
        for expr in _stmt_exprs(stmt):
            self._scan_calls_expr(expr)

    def _scan_calls_expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            qual = self._callee_qualname(node.func)
            if qual is not None:
                self.calls.append((tuple(self.held), qual, node.lineno))

    def _callee_qualname(self, func: ast.expr) -> Optional[str]:
        """``self.m`` → ``Cls.m``; ``self.X.m`` with typed ``X`` → ``C.m``."""
        if not isinstance(func, ast.Attribute):
            return None
        recv = func.value
        attr = _self_attr(recv)
        if isinstance(recv, ast.Name) and recv.id == "self":
            return f"{self.cls.name}.{func.attr}"
        if attr is not None and attr in self.cls.attr_ctor:
            ctor = self.cls.attr_ctor[attr]
            return f"{ctor}.{func.attr}"
        return None


def _stmt_bodies(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    for field in ("body", "orelse", "finalbody"):
        body = getattr(stmt, field, None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            yield body
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body


def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    for field, value in ast.iter_fields(stmt):
        if field in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item


class _LockOrderPass:
    def __init__(self) -> None:
        self.classes: dict[str, _ClassInfo] = {}
        #: edge (A, B) = "B acquired while holding A" → first site seen.
        self.edges: dict[tuple[LockId, LockId], tuple[str, int]] = {}
        self.findings: list[Finding] = []
        #: direct acquisitions per method qualname (fixpoint seed).
        self.method_acquires: dict[str, set[LockId]] = {}
        self.method_calls: dict[str, set[str]] = {}
        self.call_sites: list[tuple[str, tuple[LockId, ...], str, int]] = []

    # ------------------------------------------------------------ collection

    def add_module(self, path: str, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = _ClassInfo(path, stmt)

    def note_acquire(self, walker: _Walker, lock: LockId, lineno: int) -> None:
        walker.acquired.add(lock)
        path = walker.cls.path
        if lock in walker.held:
            self.findings.append(
                Finding(
                    rule="LCK002",
                    path=path,
                    line=lineno,
                    message=(
                        f"self-deadlock: {lock[0]}.{lock[1]} is acquired while "
                        "already held on this path (threading.Lock is not "
                        "reentrant)"
                    ),
                    hint="restructure so the inner code runs lock-free, or "
                    "split the guarded state",
                )
            )
            return
        for held in walker.held:
            self.edges.setdefault((held, lock), (path, lineno))

    def analyze(self) -> None:
        for cls in self.classes.values():
            for name, meth in cls.methods.items():
                walker = _Walker(self, cls, name)
                walker.walk_body(meth.body)
                qual = f"{cls.name}.{name}"
                self.method_acquires[qual] = set(walker.acquired)
                self.method_calls[qual] = {
                    callee for _, callee, _ in walker.calls
                }
                for held, callee, lineno in walker.calls:
                    self.call_sites.append((cls.path, held, callee, lineno))
        self._propagate()
        self._find_cycles()

    # -------------------------------------------------------------- fixpoint

    def _propagate(self) -> None:
        """Push callee acquisitions up to call sites until stable.

        A call to ``C.m`` transitively acquires whatever ``C.m`` acquires;
        iterating lets chains (``A.f`` → ``B.g`` → ``C.h``) converge.  The
        lattice is finite (subsets of lock ids), so this terminates.
        """
        changed = True
        while changed:
            changed = False
            for qual, callees in self.method_calls.items():
                acq = self.method_acquires.setdefault(qual, set())
                for callee in callees:
                    if not self._known_method(callee):
                        continue
                    extra = self.method_acquires.get(callee, set())
                    if not extra <= acq:
                        acq |= extra
                        changed = True
        # Now close call sites that held locks over a resolvable callee.
        for path, held, callee, lineno in self.call_sites:
            if not held or not self._known_method(callee):
                continue
            for lock in self.method_acquires.get(callee, set()):
                for h in held:
                    if h == lock:
                        self.findings.append(
                            Finding(
                                rule="LCK002",
                                path=path,
                                line=lineno,
                                message=(
                                    f"self-deadlock: call to {callee} acquires "
                                    f"{lock[0]}.{lock[1]} which is already "
                                    "held at this call site"
                                ),
                                hint="call the helper outside the lock, or "
                                "factor the locked region out of the helper",
                            )
                        )
                    else:
                        self.edges.setdefault((h, lock), (path, lineno))

    def _known_method(self, qual: str) -> bool:
        cls, _, meth = qual.partition(".")
        info = self.classes.get(cls)
        return info is not None and meth in info.methods

    # ---------------------------------------------------------------- cycles

    def _find_cycles(self) -> None:
        graph: dict[LockId, list[LockId]] = {}
        for (a, b) in self.edges:
            graph.setdefault(a, []).append(b)
        reported: set[tuple[LockId, ...]] = set()
        color: dict[LockId, int] = {}
        stack: list[LockId] = []

        def visit(node: LockId) -> None:
            color[node] = 1
            stack.append(node)
            for succ in graph.get(node, []):
                if color.get(succ, 0) == 0:
                    visit(succ)
                elif color.get(succ) == 1:
                    cycle = tuple(stack[stack.index(succ) :])
                    self._report_cycle(cycle, reported)
            stack.pop()
            color[node] = 2

        for node in sorted(graph):
            if color.get(node, 0) == 0:
                visit(node)

    def _report_cycle(
        self, cycle: tuple[LockId, ...], reported: set[tuple[LockId, ...]]
    ) -> None:
        # Canonicalize by rotating the smallest lock id to the front so a
        # cycle is reported once regardless of DFS entry point.
        pivot = cycle.index(min(cycle))
        canon = cycle[pivot:] + cycle[:pivot]
        if canon in reported:
            return
        reported.add(canon)
        # Anchor at the edge closing the cycle back to the first lock.
        closing = (canon[-1], canon[0])
        path, line = self.edges.get(closing, (self.classes_path_fallback(), 0))
        order = " -> ".join(f"{c}.{a}" for c, a in canon + (canon[0],))
        self.findings.append(
            Finding(
                rule="LCK002",
                path=path,
                line=line,
                message=f"lock-order cycle: {order} can deadlock",
                hint="pick one global acquisition order for these locks and "
                "restructure the call that violates it",
            )
        )

    def classes_path_fallback(self) -> str:
        for cls in self.classes.values():
            return cls.path
        return "<unknown>"


def lockorder_findings(
    sources: Mapping[str, str],
    trees: Optional[Mapping[str, ast.Module]] = None,
) -> list[Finding]:
    """Run the lock-order pass over a set of modules (path → source).

    ``trees`` supplies already-parsed modules keyed by the same paths so
    the driver's single parse is shared; missing entries are parsed here.
    """
    pass_ = _LockOrderPass()
    for path, source in sources.items():
        tree = trees.get(path) if trees is not None else None
        if tree is None:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
        pass_.add_module(path, tree)
    pass_.analyze()
    return pass_.findings
