"""Structural contract rules: SZL004 (registration), SZL005 (error-bound
declarations), SZL006 (silent exception swallowing).

SZ3's design argument — modular codec stages with machine-checkable
contracts — is enforced here for the op layer: every op module must be
reachable from the dispatch registry (SZL004) and must declare how each of
its kernels propagates the error bound (SZL005), so a new op cannot land
without stating its contract.  SZL006 keeps codec paths from converting
corrupt-stream signals into silent garbage.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    ProjectContext,
    RuleContext,
    RuleSpec,
    register_rule,
)

#: The error-propagation vocabulary op modules may declare (SZL005).
PROPAGATION_VOCAB = frozenset(
    {"exact", "preserved", "scaled", "bounded-additive", "computation"}
)

_PRIVATE_PREFIX = "_"
_NON_OP_MODULES = {"dispatch.py", "__init__.py"}


def _op_modules_beside(dispatch_path: Path) -> list[Path]:
    return sorted(
        p
        for p in dispatch_path.parent.glob("*.py")
        if p.name not in _NON_OP_MODULES and not p.name.startswith(_PRIVATE_PREFIX)
    )


def _modules_imported_by(dispatch_source: str, dispatch_path: Path) -> set[str]:
    """Module basenames the dispatch module imports, by any spelling."""
    try:
        tree = ast.parse(dispatch_source, filename=str(dispatch_path))
    except SyntaxError:
        return set()
    imported: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            # from repro.core.ops.negate import negate  -> "negate"
            imported.add(node.module.rsplit(".", 1)[-1])
            # from repro.core.ops import negate, reductions -> alias names
            for alias in node.names:
                imported.add(alias.name.split(".")[0])
        elif isinstance(node, ast.Import):
            for alias in node.names:
                imported.add(alias.name.rsplit(".", 1)[-1])
    return imported


def _check_szl004(ctx: ProjectContext) -> list[Finding]:
    findings: list[Finding] = []
    for dispatch_path in [p for p in ctx.paths if p.name == "dispatch.py"]:
        source = ctx.sources.get(dispatch_path)
        if source is None:
            try:
                source = dispatch_path.read_text()
            except OSError:
                continue
        imported = _modules_imported_by(source, dispatch_path)
        for module in _op_modules_beside(dispatch_path):
            if module.stem not in imported:
                findings.append(
                    Finding(
                        rule="SZL004",
                        path=str(module),
                        line=1,
                        message=(
                            f"op module {module.stem!r} sits beside "
                            f"{dispatch_path.name} but is never imported by "
                            "it; its operations are unreachable from the "
                            "registry"
                        ),
                        hint="register the module's kernels in dispatch "
                        "(OPERATIONS or BIVARIATE_OPERATIONS), or prefix the "
                        "module with '_' if it is internal machinery",
                    )
                )
    return findings


register_rule(
    RuleSpec(
        rule_id="SZL004",
        summary="op module present under core/ops/ but not registered in "
        "dispatch",
        hint="import and register the module in dispatch.py",
        tags=frozenset({"ops-module"}),
        project_checker=_check_szl004,
    )
)


# ---------------------------------------------------------------------------
# SZL005 — op module must declare error-bound propagation
# ---------------------------------------------------------------------------


def _check_szl005(ctx: RuleContext) -> list[Finding]:
    declaration: ast.Assign | None = None
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "ERROR_PROPAGATION"
            for t in node.targets
        ):
            declaration = node
            break
    if declaration is None:
        return [
            ctx.finding(
                "SZL005",
                1,
                "op module declares no ERROR_PROPAGATION mapping; every "
                "registered operation must state how it propagates the "
                "error bound",
                hint="add ERROR_PROPAGATION = {<op name>: <mode>} with modes "
                f"from {sorted(PROPAGATION_VOCAB)}",
            )
        ]
    findings: list[Finding] = []
    value = declaration.value
    if not isinstance(value, ast.Dict) or not value.keys:
        return [
            ctx.finding(
                "SZL005",
                declaration,
                "ERROR_PROPAGATION must be a non-empty literal dict of "
                "op name -> propagation mode",
                hint="declare one entry per exported operation",
            )
        ]
    for key, val in zip(value.keys, value.values):
        key_ok = isinstance(key, ast.Constant) and isinstance(key.value, str)
        val_ok = (
            isinstance(val, ast.Constant)
            and isinstance(val.value, str)
            and val.value in PROPAGATION_VOCAB
        )
        if not key_ok or not val_ok:
            findings.append(
                ctx.finding(
                    "SZL005",
                    val if isinstance(val, ast.AST) else declaration,
                    "ERROR_PROPAGATION entries must map a literal op-name "
                    f"string to one of {sorted(PROPAGATION_VOCAB)}",
                    hint="use literal strings so the contract is statically "
                    "checkable",
                )
            )
    return findings


register_rule(
    RuleSpec(
        rule_id="SZL005",
        summary="op module missing an error-bound-propagation declaration",
        hint="declare ERROR_PROPAGATION = {op: mode}",
        tags=frozenset({"ops-module"}),
        checker=_check_szl005,
    )
)


# ---------------------------------------------------------------------------
# SZL006 — bare except / silent pass in codec paths
# ---------------------------------------------------------------------------


def _check_szl006(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(
                ctx.finding(
                    "SZL006",
                    node,
                    "bare 'except:' in a codec path catches SystemExit/"
                    "KeyboardInterrupt and hides corrupt-stream signals",
                    hint="catch the specific error (FormatError, "
                    "StreamFormatError, ValueError) and re-raise or report",
                )
            )
        elif len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
            findings.append(
                ctx.finding(
                    "SZL006",
                    node,
                    "exception silently swallowed in a codec path; a corrupt "
                    "stream would decode to garbage with no diagnostic",
                    hint="convert the condition to a FormatError (or log it) "
                    "instead of passing",
                )
            )
    return findings


register_rule(
    RuleSpec(
        rule_id="SZL006",
        summary="bare except / silent pass in a codec path",
        hint="surface the error as FormatError instead of swallowing it",
        tags=frozenset({"codec", "ops", "runtime"}),
        checker=_check_szl006,
    )
)
