"""Pluggable lint-rule registry (mirrors :mod:`repro.baselines.registry`).

Each rule is a :class:`RuleSpec`: an id, a one-line summary, a fix hint,
the scope tags it applies to, and a checker.  File rules see one parsed
module at a time through a :class:`RuleContext`; project rules see the
whole linted file set (SZL004 needs the op directory next to
``dispatch.py``).  Register new rules with :func:`register_rule` — the
linter, the CLI ``--select`` filter, and ``docs/ANALYSIS.md`` all iterate
the registry, so a registered rule is automatically wired everywhere.

Scope tags
----------
``ops``
    op-kernel code (``repro/core/ops/*``) — numeric rules about the
    quantized domain.
``ops-module``
    a registrable op module under ``core/ops/`` (not ``_``-private, not
    ``dispatch``) — module-convention rules (SZL005).
``codec``
    serialization / codec paths (``core``, ``bitstream``, ``encoding``,
    ``baselines``, ``transforms``).
``runtime``
    the runtime and parallel layers.

Files outside the ``repro`` package (ad-hoc lint targets, rule fixtures)
default to ``{"ops", "codec", "runtime"}`` and may override their tags
with a leading ``# szops-lint-scope: ops-module`` marker comment.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

from repro.analysis.findings import Finding, Severity

__all__ = [
    "RuleContext",
    "ProjectContext",
    "RuleSpec",
    "RULES",
    "register_rule",
    "all_rules",
    "terminal_name",
    "root_name",
    "contains_widening_cast",
    "dotted_parts",
]


@dataclass
class RuleContext:
    """Everything a file rule may inspect about one module."""

    path: Path
    source: str
    tree: ast.Module
    tags: frozenset[str]

    def finding(
        self,
        rule: str,
        node: ast.AST | int,
        message: str,
        hint: str = "",
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Finding(
            rule=rule,
            path=str(self.path),
            line=line,
            message=message,
            hint=hint,
            severity=severity,
        )


@dataclass
class ProjectContext:
    """The whole linted file set, for cross-file rules."""

    paths: list[Path]
    sources: dict[Path, str] = field(default_factory=dict)


Checker = Callable[[RuleContext], list[Finding]]
ProjectChecker = Callable[[ProjectContext], list[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    """One registered lint rule."""

    rule_id: str
    summary: str
    hint: str
    tags: frozenset[str]
    checker: Checker | None = None
    project_checker: ProjectChecker | None = None

    @property
    def is_project_rule(self) -> bool:
        return self.project_checker is not None


RULES: dict[str, RuleSpec] = {}


def register_rule(spec: RuleSpec) -> RuleSpec:
    """Add a rule to the registry (last registration wins, like codecs)."""
    RULES[spec.rule_id] = spec
    return spec


def all_rules() -> list[RuleSpec]:
    """Registered rules in rule-id order."""
    return [RULES[k] for k in sorted(RULES)]


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------


def terminal_name(node: ast.AST) -> str | None:
    """The identifier a value expression terminates in, if any.

    ``blocks.const_outliers`` -> ``const_outliers``; ``q[sel]`` -> ``q``;
    calls and literals have no terminal name.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return terminal_name(node.value)
    return None


def root_name(node: ast.AST) -> str | None:
    """The left-most identifier of an expression (``a.b.c[0]`` -> ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def dotted_parts(node: ast.AST) -> list[str]:
    """Attribute chain as parts: ``np.float32`` -> ``["np", "float32"]``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts[::-1]


#: dtype spellings that widen quantized/int arithmetic out of harm's way.
_WIDENING_DTYPES = {"float64", "int64", "uint64", "f8", "i8", "u8", "<f8", "<i8"}


def _is_widening_dtype_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute) and node.attr in _WIDENING_DTYPES:
        return True
    if isinstance(node, ast.Name) and node.id in _WIDENING_DTYPES:
        return True
    if isinstance(node, ast.Constant) and node.value in _WIDENING_DTYPES:
        return True
    return False


def contains_widening_cast(node: ast.AST) -> bool:
    """True when a subtree widens to float64/int64 before arithmetic.

    Recognizes ``x.astype(np.float64)`` / ``astype("i8")`` style casts,
    ``np.float64(x)`` / ``float(x)`` constructors, and ``math.fsum`` — the
    idioms the quantized-domain code uses to leave the overflow-prone
    integer lane.
    """
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            args = list(sub.args) + [kw.value for kw in sub.keywords]
            if any(_is_widening_dtype_expr(a) for a in args):
                return True
        parts = dotted_parts(func)
        if parts and parts[-1] in {"float64", "int64", "uint64", "fsum"}:
            return True
        if isinstance(func, ast.Name) and func.id == "float":
            return True
    return False


def iter_function_defs(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


# Import rule modules for their registration side effects (mirrors how
# baseline codecs self-register): keep these imports at the bottom so the
# helpers above exist when the rule modules load.
from repro.analysis.rules import numeric as _numeric  # noqa: E402,F401
from repro.analysis.rules import structure as _structure  # noqa: E402,F401
