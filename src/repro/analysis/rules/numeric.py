"""Numeric-safety rules: SZL001 (int overflow), SZL002 (narrowing), SZL003 (NaN).

These rules encode the error-bound contract's failure modes.  The
compressed-domain ops work on int64 *quantized* planes whose values the
pipeline guards to |q| < 2^62 (``repro.core.ops._partial.Q_LIMIT``); an
unwidened integer product or an unguarded shift can silently wrap and
decode to garbage that still looks like a valid stream.  Narrowing a
float64 intermediate to float32 mid-pipeline can push a reconstruction
past the bound by an ulp.  NaN-unsafe comparisons let a NaN slip through
an overflow guard (the scalar-mul NaN-product bug PR 1 fixed was exactly
this shape).
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules import (
    RuleContext,
    RuleSpec,
    contains_widening_cast,
    dotted_parts,
    register_rule,
    root_name,
    terminal_name,
)

#: Identifiers the repo uses for quantized-domain integer planes.
QUANTIZED_NAMES = frozenset(
    {"q", "q_new", "q_stored", "outliers", "const_outliers", "rho"}
)

#: AugAssign / BinOp operators that can overflow int64.
_OVERFLOW_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.LShift)


def _is_quantized_operand(node: ast.AST) -> bool:
    return terminal_name(node) in QUANTIZED_NAMES


def _check_szl001(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            operands = (node.left, node.right)
            if any(_is_quantized_operand(op) for op in operands) and not any(
                contains_widening_cast(op) for op in operands
            ):
                findings.append(
                    ctx.finding(
                        "SZL001",
                        node,
                        "integer multiplication on a quantized-domain plane "
                        "without a widening cast can wrap int64 silently",
                        hint="widen one operand with .astype(np.float64) (or "
                        "np.int64 from a narrower type), or guard the range "
                        "and suppress with '# szops: ignore[SZL001]'",
                    )
                )
        elif isinstance(node, ast.AugAssign) and isinstance(node.op, _OVERFLOW_OPS):
            if _is_quantized_operand(node.target) and not contains_widening_cast(
                node.value
            ):
                findings.append(
                    ctx.finding(
                        "SZL001",
                        node,
                        "in-place integer arithmetic on a quantized-domain "
                        "plane without an overflow guard",
                        hint="bound the operand against Q_LIMIT before the "
                        "shift, then suppress with '# szops: ignore[SZL001]'",
                    )
                )
    return findings


register_rule(
    RuleSpec(
        rule_id="SZL001",
        summary="overflow-prone integer arithmetic on quantized arrays "
        "without a widening cast",
        hint="widen to float64/int64 or guard against Q_LIMIT",
        tags=frozenset({"ops", "runtime", "codec"}),
        checker=_check_szl001,
    )
)


# ---------------------------------------------------------------------------
# SZL002 — implicit float64 -> float32 narrowing
# ---------------------------------------------------------------------------

_F32_SPELLINGS = {"float32", "f4", "<f4", ">f4"}


def _is_f32_dtype_expr(node: ast.AST, maybe_f32_names: set[str]) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "float32":
        return True
    if isinstance(node, ast.Constant) and node.value in _F32_SPELLINGS:
        return True
    if isinstance(node, ast.Name) and node.id in maybe_f32_names:
        return True
    return False


def _collect_maybe_f32_names(tree: ast.Module) -> set[str]:
    """Names assigned from expressions that can evaluate to float32.

    Catches the codec idiom ``ftype = np.float32 if ... else np.float64``:
    a later ``computed.astype(ftype)`` is a conditional narrowing site.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        mentions_f32 = any(
            (isinstance(sub, ast.Attribute) and sub.attr == "float32")
            or (isinstance(sub, ast.Constant) and sub.value in _F32_SPELLINGS)
            for sub in ast.walk(value)
        )
        if not mentions_f32:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_computed_expr(node: ast.AST) -> bool:
    """A value produced by arithmetic/calls rather than loaded from storage.

    Narrowing a *stored* array at an I/O boundary is legitimate; narrowing
    a freshly computed float64 expression discards precision the error
    bound may need.
    """
    return isinstance(node, (ast.BinOp, ast.Call, ast.UnaryOp))


def _check_szl002(ctx: RuleContext) -> list[Finding]:
    maybe_f32 = _collect_maybe_f32_names(ctx.tree)
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        # computed.astype(<f32-ish>)
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            dtype_args = list(node.args) + [kw.value for kw in node.keywords]
            if any(_is_f32_dtype_expr(a, maybe_f32) for a in dtype_args):
                if _is_computed_expr(func.value):
                    findings.append(
                        ctx.finding(
                            "SZL002",
                            node,
                            "float64 arithmetic result narrowed to float32 "
                            "mid-pipeline; the dropped ulps can push a "
                            "reconstruction past the error bound",
                            hint="keep the intermediate in float64 and account "
                            "for the narrowing error before comparing against "
                            "eps, or narrow only at the I/O boundary",
                        )
                    )
            continue
        # np.float32(computed) and np.asarray(computed, dtype=float32)
        parts = dotted_parts(func)
        if parts and parts[-1] == "float32":
            if any(_is_computed_expr(a) for a in node.args):
                findings.append(
                    ctx.finding(
                        "SZL002",
                        node,
                        "computed float64 value wrapped in np.float32()",
                        hint="stay in float64 until the I/O boundary",
                    )
                )
        elif parts and parts[-1] in {"asarray", "ascontiguousarray", "array"}:
            dtype_kwargs = [kw.value for kw in node.keywords if kw.arg == "dtype"]
            if any(_is_f32_dtype_expr(a, maybe_f32) for a in dtype_kwargs) and any(
                _is_computed_expr(a) for a in node.args
            ):
                findings.append(
                    ctx.finding(
                        "SZL002",
                        node,
                        "computed expression materialized directly as float32",
                        hint="compute in float64, then narrow at the boundary",
                    )
                )
    return findings


register_rule(
    RuleSpec(
        rule_id="SZL002",
        summary="implicit float64 -> float32 narrowing of a computed value",
        hint="narrow only at I/O boundaries; account for the cast error",
        tags=frozenset({"ops", "codec", "runtime"}),
        checker=_check_szl002,
    )
)


# ---------------------------------------------------------------------------
# SZL003 — NaN-unsafe direct comparisons in op kernels
# ---------------------------------------------------------------------------

#: Calls whose results are float-domain (can be NaN) in kernel code.
_FLOAT_PRODUCERS = frozenset(
    {
        "rint",
        "sqrt",
        "floor",
        "ceil",
        "dot",
        "fsum",
        "float",
        "float64",
        "dequantize",
        "dequantize_scalar",
        "mean",
        "sum",
        "std",
        "var",
    }
)

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def _produces_float(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            parts = dotted_parts(sub.func)
            if parts and parts[-1] in _FLOAT_PRODUCERS:
                return True
    return False


def _check_szl003(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for fn in [
        n
        for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]:
        float_names: set[str] = set()
        guarded: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and _produces_float(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        float_names.add(target.id)
            if isinstance(node, ast.Call):
                parts = dotted_parts(node.func)
                if parts and parts[-1] in {"isnan", "isfinite", "isclose", "nan_to_num"}:
                    for arg in node.args:
                        name = root_name(arg)
                        if name:
                            guarded.add(name)

        def operand_unsafe(node: ast.AST) -> bool:
            name = root_name(node)
            if name in guarded:
                return False
            if name in float_names:
                return True
            return _produces_float(node) and (
                name is None or name not in guarded
            )

        for node in ast.walk(fn):
            if not isinstance(node, ast.Compare):
                continue
            if not all(isinstance(op, _COMPARE_OPS) for op in node.ops):
                continue
            if any(operand_unsafe(o) for o in [node.left, *node.comparators]):
                findings.append(
                    ctx.finding(
                        "SZL003",
                        node,
                        "direct comparison on a float-domain value in an op "
                        "kernel; NaN compares False and slips past guards",
                        hint="check np.isnan/np.isfinite first (NaN fails "
                        "every ordered comparison), or suppress with a "
                        "justification when NaN is impossible by construction",
                    )
                )
    return findings


register_rule(
    RuleSpec(
        rule_id="SZL003",
        summary="NaN-unsafe direct comparison in an op kernel",
        hint="guard with np.isnan/np.isfinite before comparing",
        tags=frozenset({"ops"}),
        checker=_check_szl003,
    )
)
