"""Static analysis for the SZOps reproduction: lint, lock, and stream checks.

SZOps' correctness story is an error bound that survives compressed-domain
arithmetic, which makes silent numeric hazards — int64 overflow in the
quantized domain, float64->float32 narrowing, NaN-unsafe comparisons —
exactly the bugs the differential tests only catch probabilistically.  This
package enforces the repository's format, numeric-safety, and concurrency
invariants *statically*, as three passes:

* :mod:`repro.analysis.linter` — ``szops-lint``, an AST linter with a
  pluggable rule registry (:mod:`repro.analysis.rules`) encoding the repo
  invariants as named rules SZL001–SZL006;
* :mod:`repro.analysis.lockcheck` — a lock-discipline pass verifying that
  every mutation of declared guarded attributes happens lexically inside
  the matching ``with self._lock:`` block;
* :mod:`repro.analysis.verify_stream` — a static container verifier that
  checks serialized SZOps / SZp streams without decompressing them.

All passes emit structured :class:`~repro.analysis.findings.Finding`
records with JSON and human renderings, and are wired into
``python -m repro.cli lint`` / ``verify-stream`` and the CI lint gate.
See ``docs/ANALYSIS.md`` for rule rationales and the suppression syntax
(``# szops: ignore[SZL001]``).
"""

from __future__ import annotations

from repro.analysis.findings import (
    Finding,
    Severity,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.linter import analyze_paths, lint_paths, lint_source
from repro.analysis.lockcheck import lockcheck_paths, lockcheck_source
from repro.analysis.verify_stream import (
    STREAM_VERIFIERS,
    assert_stream_ok,
    verify_file,
    verify_szops_bytes,
    verify_szp_payload,
)

__all__ = [
    "Finding",
    "Severity",
    "render_json",
    "render_sarif",
    "render_text",
    "analyze_paths",
    "lint_paths",
    "lint_source",
    "lockcheck_paths",
    "lockcheck_source",
    "STREAM_VERIFIERS",
    "assert_stream_ok",
    "verify_file",
    "verify_szops_bytes",
    "verify_szp_payload",
]
