"""``lockcheck``: lexical lock-discipline verification (rule ``LCK001``).

The runtime layer shares mutable state between the chunked executor's
worker threads: the decoded-block cache's LRU dict and byte counter, the
executor's pool handle.  A mutation of that state outside the owning lock
is a data race that no unit test reliably catches — the cache keeps
"working" with a corrupted byte count until eviction stops firing.

Classes opt in by declaring the attributes their lock guards::

    class DecodedBlockCache:
        _GUARDED_ATTRS = ("_entries", "_nbytes", "stats")

``lockcheck`` then verifies, purely lexically, that every mutation of a
declared attribute on ``self`` happens inside a ``with self._lock:``
block (or inside a method exempt by convention):

* ``__init__`` is exempt — no other thread holds a reference yet.
* Methods named ``*_locked`` are exempt — the naming convention promises
  the caller already holds the lock, and the checker verifies that every
  *call* to a ``*_locked`` method from a non-exempt method is itself
  inside a ``with self._lock:`` block.

Mutations counted: assignment / augmented assignment / deletion of
``self.<attr>`` or any subscript of it, and calls to mutator methods
(``append``, ``pop``, ``update``, ``clear``, ...) on ``self.<attr>``
or an attribute of it (``self.stats.record()`` mutates ``stats``).

The pass is lexical on purpose: it cannot prove the *right* lock is
held across helper-function boundaries, but it catches the failure mode
that actually occurs — a mutation written without thinking about the
lock at all — and it runs with zero imports of the checked module.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding, sort_findings

__all__ = ["lockcheck_paths", "lockcheck_source", "DEFAULT_LOCK_ATTR"]

#: The attribute name the ``with self.<lock>:`` block must use.
DEFAULT_LOCK_ATTR = "_lock"

#: Method names on a guarded attribute that mutate it in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "move_to_end",
        "record",
        "increment",
        "sort",
        "reverse",
    }
)


def _guarded_attrs(cls: ast.ClassDef) -> tuple[int, tuple[str, ...]] | None:
    """The class's ``_GUARDED_ATTRS`` declaration, if present."""
    for node in cls.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "_GUARDED_ATTRS" for t in node.targets
        ):
            value = node.value
            if isinstance(value, (ast.Tuple, ast.List)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in value.elts
            ):
                return node.lineno, tuple(e.value for e in value.elts)
            return node.lineno, ()
    return None


def _is_self_lock(node: ast.AST, lock_attr: str) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == lock_attr
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _self_attr_name(node: ast.AST) -> str | None:
    """``self.<attr>``, ``self.<attr>[...]``, ``self.<attr>.<sub>`` -> attr."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    if isinstance(node, ast.Attribute):
        return _self_attr_name(node.value)
    return None


class _MethodWalker(ast.NodeVisitor):
    """Walk one method body tracking ``with self._lock:`` nesting."""

    def __init__(
        self,
        path: Path,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
        guarded: tuple[str, ...],
        lock_attr: str,
    ) -> None:
        self.path = path
        self.cls = cls
        self.method = method
        self.guarded = frozenset(guarded)
        self.lock_attr = lock_attr
        self.depth = 0
        self.findings: list[Finding] = []

    # -- lock nesting -------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        holds = any(
            _is_self_lock(item.context_expr, self.lock_attr) for item in node.items
        )
        if holds:
            self.depth += 1
        self.generic_visit(node)
        if holds:
            self.depth -= 1

    # Nested function defs get their own lexical scope; a closure mutating
    # guarded state is reported unguarded unless the def itself sits inside
    # the lock (conservative: closures usually escape to other threads).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.method:
            self.generic_visit(node)
        else:
            saved, self.depth = self.depth, 0
            self.generic_visit(node)
            self.depth = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- mutations ----------------------------------------------------------

    def _report(self, node: ast.AST, attr: str, what: str) -> None:
        self.findings.append(
            Finding(
                rule="LCK001",
                path=str(self.path),
                line=getattr(node, "lineno", 0),
                message=(
                    f"{what} of guarded attribute {attr!r} in "
                    f"{self.cls.name}.{self.method.name} outside "
                    f"'with self.{self.lock_attr}:'"
                ),
                hint=f"wrap the mutation in 'with self.{self.lock_attr}:', or "
                "move it into a *_locked helper called under the lock",
            )
        )

    def _check_target(self, target: ast.AST, node: ast.AST, what: str) -> None:
        attr = _self_attr_name(target)
        if attr in self.guarded and self.depth == 0:
            self._report(node, attr, what)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node, "assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node, "augmented assignment")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node, "assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node, "deletion")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # self.<attr>...<mutator>(...) mutates a guarded attribute.
            if func.attr in _MUTATOR_METHODS:
                attr = _self_attr_name(func.value)
                if attr in self.guarded and self.depth == 0:
                    self._report(node, attr, f"mutating call .{func.attr}()")
            # self.<helper>_locked(...) promises the caller holds the lock.
            elif (
                func.attr.endswith("_locked")
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self.depth == 0
            ):
                self.findings.append(
                    Finding(
                        rule="LCK001",
                        path=str(self.path),
                        line=node.lineno,
                        message=(
                            f"call to {self.cls.name}.{func.attr}() outside "
                            f"'with self.{self.lock_attr}:'; the _locked "
                            "suffix promises the caller holds the lock"
                        ),
                        hint="take the lock around the call, or rename the "
                        "helper if it does not touch guarded state",
                    )
                )
        self.generic_visit(node)


def _is_exempt(method: ast.FunctionDef) -> bool:
    return method.name == "__init__" or method.name.endswith("_locked")


def lockcheck_source(
    source: str, path: Path | str = "<memory>", lock_attr: str = DEFAULT_LOCK_ATTR
) -> list[Finding]:
    """Check one module's source for lock-discipline violations."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="LCK001",
                path=str(path),
                line=exc.lineno or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for cls in [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]:
        declared = _guarded_attrs(cls)
        if declared is None:
            continue
        decl_line, attrs = declared
        if not attrs:
            findings.append(
                Finding(
                    rule="LCK001",
                    path=str(path),
                    line=decl_line,
                    message=f"{cls.name}._GUARDED_ATTRS must be a non-empty "
                    "tuple of literal attribute-name strings",
                    hint="declare the attributes self._lock guards, e.g. "
                    '_GUARDED_ATTRS = ("_entries", "_nbytes")',
                )
            )
            continue
        for method in [n for n in cls.body if isinstance(n, ast.FunctionDef)]:
            if _is_exempt(method):
                continue
            walker = _MethodWalker(path, cls, method, attrs, lock_attr)
            walker.visit(method)
            findings.extend(walker.findings)
    return findings


def lockcheck_paths(
    paths: Sequence[Path | str] | None = None,
    lock_attr: str = DEFAULT_LOCK_ATTR,
) -> list[Finding]:
    """Check files/directories; defaults to every lock-guarded layer.

    The default set is the runtime + parallel packages plus the compressor
    module, which shares its lazily-built backend pool between threads the
    same way the executor and backends share theirs.
    """
    if paths is None:
        import repro

        pkg = Path(repro.__file__).resolve().parent
        paths = [
            pkg / "runtime",
            pkg / "parallel",
            pkg / "service",
            pkg / "core" / "compressor.py",
        ]
    from repro.analysis.linter import discover_files

    findings: list[Finding] = []
    for path in discover_files([Path(p) for p in paths]):
        try:
            source = path.read_text()
        except OSError as exc:
            findings.append(
                Finding(
                    rule="LCK001",
                    path=str(path),
                    line=0,
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        findings.extend(lockcheck_source(source, path, lock_attr=lock_attr))
    return sort_findings(findings)
