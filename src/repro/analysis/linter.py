"""``szops-lint``: the AST linter driving the SZL rule registry.

The driver owns everything rule-independent: file discovery, scope-tag
computation, the suppression syntax, and report assembly.  Rules live in
:mod:`repro.analysis.rules` and see parsed modules only.

Suppressions
------------
A finding is suppressed by a trailing comment on its line::

    out.outliers += rho  # szops: ignore[SZL001] -- shift guarded above

``# szops: ignore`` without a bracket suppresses every rule on that line.
Suppressions are deliberately line-granular: a blanket file-level opt-out
would defeat the point of encoding invariants as rules.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, sort_findings
from repro.analysis.rules import ProjectContext, RuleContext, RuleSpec, all_rules

__all__ = ["lint_paths", "lint_source", "discover_files", "default_target"]

_SUPPRESS_RE = re.compile(
    r"#\s*szops:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)
_SCOPE_MARKER_RE = re.compile(r"#\s*szops-lint-scope:[ \t]*(?P<tags>[\w, \t-]+)")

#: Default tags for files linted outside the repro package (fixtures,
#: ad-hoc targets): all expression-level scopes, but not the module
#: convention scope — a loose file must opt into ``ops-module`` with a
#: ``# szops-lint-scope: ops-module`` marker.
_LOOSE_FILE_TAGS = frozenset({"ops", "codec", "runtime"})

_CODEC_DIRS = {"core", "bitstream", "encoding", "baselines", "transforms"}
_RUNTIME_DIRS = {"runtime", "parallel"}


def default_target() -> Path:
    """The installed ``repro`` package directory (cwd-independent)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _package_relative(path: Path) -> tuple[str, ...] | None:
    """Path parts below the ``repro`` package, or ``None`` for loose files."""
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return parts[i + 1 :]
    return None


def scope_tags(path: Path, source: str) -> frozenset[str]:
    """Scope tags of one file (see :mod:`repro.analysis.rules`)."""
    # Search the first five physical lines only: the marker is a header.
    head = "\n".join(source.splitlines()[:5])
    marker = _SCOPE_MARKER_RE.search(head)
    if marker:
        tags = {t.strip() for t in re.split(r"[,\s]+", marker.group("tags")) if t.strip()}
        return frozenset(tags)
    rel = _package_relative(path)
    if rel is None:
        return _LOOSE_FILE_TAGS
    tags = set()
    if len(rel) >= 2 and rel[0] == "core" and rel[1] == "ops":
        tags |= {"ops", "codec"}
        name = rel[-1]
        if (
            name.endswith(".py")
            and not name.startswith("_")
            and name not in {"dispatch.py", "__init__.py"}
        ):
            tags.add("ops-module")
    elif rel and rel[0] in _CODEC_DIRS:
        tags.add("codec")
    elif rel and rel[0] in _RUNTIME_DIRS:
        tags.add("runtime")
    return frozenset(tags)


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Per-line suppressions; ``None`` means every rule is suppressed."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            ids = {r.strip() for r in rules.split(",") if r.strip()}
            prev = out.get(lineno, set())
            # An earlier blanket suppression on this line wins outright.
            out[lineno] = None if prev is None else prev | ids
    return out


def _apply_suppressions(
    findings: list[Finding], suppressions: dict[int, set[str] | None]
) -> list[Finding]:
    kept = []
    for f in findings:
        rule_set = suppressions.get(f.line, set())
        if rule_set is None or (rule_set and f.rule in rule_set):
            continue
        kept.append(f)
    return kept


def _selected(rules: Iterable[RuleSpec], select: Sequence[str] | None) -> list[RuleSpec]:
    if select is None:
        return list(rules)
    wanted = {s.strip() for s in select}
    return [r for r in rules if r.rule_id in wanted]


def lint_source(
    source: str,
    path: Path | str = "<memory>",
    select: Sequence[str] | None = None,
    tags: frozenset[str] | None = None,
) -> list[Finding]:
    """Lint one module's source text with the file-level rules."""
    path = Path(path)
    if tags is None:
        tags = scope_tags(path, source)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule="SZL000",
                path=str(path),
                line=exc.lineno or 0,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; unparseable files cannot be "
                "checked against any invariant",
            )
        ]
    ctx = RuleContext(path=path, source=source, tree=tree, tags=tags)
    findings: list[Finding] = []
    for rule in _selected(all_rules(), select):
        if rule.checker is None:
            continue
        if not (rule.tags & tags):
            continue
        findings.extend(rule.checker(ctx))
    return _apply_suppressions(findings, _suppressions(source))


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into the sorted set of ``.py`` targets."""
    out: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            out.add(path)
    return sorted(out)


def lint_paths(
    paths: Sequence[Path | str] | None = None,
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint files/directories; defaults to the whole ``repro`` package.

    Runs all file rules plus the project rules (SZL004 needs to see the
    op modules and ``dispatch.py`` together).
    """
    targets = discover_files(
        [Path(p) for p in paths] if paths else [default_target()]
    )
    findings: list[Finding] = []
    sources: dict[Path, str] = {}
    for path in targets:
        try:
            source = path.read_text()
        except OSError as exc:
            findings.append(
                Finding(
                    rule="SZL000",
                    path=str(path),
                    line=0,
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        sources[path] = source
        findings.extend(lint_source(source, path, select=select))
    project_ctx = ProjectContext(paths=targets, sources=sources)
    for rule in _selected(all_rules(), select):
        if rule.project_checker is not None:
            project_findings = rule.project_checker(project_ctx)
            # Project findings honour the suppression comments of the file
            # they anchor to (line-granular, same as file rules).
            by_path: dict[str, list[Finding]] = {}
            for f in project_findings:
                by_path.setdefault(f.path, []).append(f)
            for fpath, fs in by_path.items():
                src = sources.get(Path(fpath))
                findings.extend(
                    _apply_suppressions(fs, _suppressions(src)) if src else fs
                )
    return sort_findings(findings)
