"""``szops-lint``: the AST linter driving the SZL rule registry.

The driver owns everything rule-independent: file discovery, scope-tag
computation, the suppression syntax, and report assembly.  Rules live in
:mod:`repro.analysis.rules` and see parsed modules only.

Suppressions
------------
A finding is suppressed by a trailing comment on its line::

    out.outliers += rho  # szops: ignore[SZL001] -- shift guarded above

``# szops: ignore`` without a bracket suppresses every rule on that line.
Suppressions are deliberately line-granular: a blanket file-level opt-out
would defeat the point of encoding invariants as rules.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.rules import ProjectContext, RuleContext, RuleSpec, all_rules

__all__ = [
    "analyze_paths",
    "lint_paths",
    "lint_source",
    "discover_files",
    "default_target",
]

_SUPPRESS_RE = re.compile(
    r"#\s*szops:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)
_SCOPE_MARKER_RE = re.compile(r"#\s*szops-lint-scope:[ \t]*(?P<tags>[\w, \t-]+)")

#: Default tags for files linted outside the repro package (fixtures,
#: ad-hoc targets): all expression-level scopes, but not the module
#: convention scope — a loose file must opt into ``ops-module`` with a
#: ``# szops-lint-scope: ops-module`` marker.
_LOOSE_FILE_TAGS = frozenset({"ops", "codec", "runtime", "wire"})

_CODEC_DIRS = {"core", "bitstream", "encoding", "baselines", "transforms"}
_RUNTIME_DIRS = {"runtime", "parallel", "service", "cluster"}
#: Directories whose files sit on the network trust boundary: the taint
#: pass (TNT001/TNT002) only runs on ``wire``-tagged files.
_WIRE_DIRS = {"service", "cluster"}


def default_target() -> Path:
    """The installed ``repro`` package directory (cwd-independent)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _package_relative(path: Path) -> tuple[str, ...] | None:
    """Path parts below the ``repro`` package, or ``None`` for loose files."""
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return parts[i + 1 :]
    return None


def scope_tags(path: Path, source: str) -> frozenset[str]:
    """Scope tags of one file (see :mod:`repro.analysis.rules`)."""
    # Search the first five physical lines only: the marker is a header.
    head = "\n".join(source.splitlines()[:5])
    marker = _SCOPE_MARKER_RE.search(head)
    if marker:
        tags = {t.strip() for t in re.split(r"[,\s]+", marker.group("tags")) if t.strip()}
        return frozenset(tags)
    rel = _package_relative(path)
    if rel is None:
        return _LOOSE_FILE_TAGS
    tags = set()
    if len(rel) >= 2 and rel[0] == "core" and rel[1] == "ops":
        tags |= {"ops", "codec"}
        name = rel[-1]
        if (
            name.endswith(".py")
            and not name.startswith("_")
            and name not in {"dispatch.py", "__init__.py"}
        ):
            tags.add("ops-module")
    elif rel and rel[0] in _CODEC_DIRS:
        tags.add("codec")
    elif rel and rel[0] in _RUNTIME_DIRS:
        tags.add("runtime")
    if rel and rel[0] in _WIRE_DIRS:
        tags.add("wire")
    return frozenset(tags)


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """``(lineno, text)`` of every real comment token in ``source``.

    Tokenizing (rather than scanning physical lines) keeps suppression
    *examples* inside docstrings and hint strings from acting — or being
    accounted — as suppressions.  Falls back to a plain line scan when the
    file does not tokenize (it then also fails SZL000 anyway).
    """
    try:
        return [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return list(enumerate(source.splitlines(), start=1))


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Per-line suppressions; ``None`` means every rule is suppressed."""
    out: dict[int, set[str] | None] = {}
    for lineno, text in _comment_lines(source):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            ids = {r.strip() for r in rules.split(",") if r.strip()}
            prev = out.get(lineno, set())
            # An earlier blanket suppression on this line wins outright.
            out[lineno] = None if prev is None else prev | ids
    return out


def _apply_suppressions(
    findings: list[Finding],
    suppressions: dict[int, set[str] | None],
    used: set[tuple[int, str]] | None = None,
) -> list[Finding]:
    """Drop suppressed findings; record hits as ``(line, rule)`` in ``used``."""
    kept = []
    for f in findings:
        rule_set = suppressions.get(f.line, set())
        if rule_set is None or (rule_set and f.rule in rule_set):
            if used is not None:
                used.add((f.line, f.rule))
            continue
        kept.append(f)
    return kept


def _selected(rules: Iterable[RuleSpec], select: Sequence[str] | None) -> list[RuleSpec]:
    if select is None:
        return list(rules)
    wanted = {s.strip() for s in select}
    return [r for r in rules if r.rule_id in wanted]


def _lint_file_raw(
    source: str,
    path: Path,
    select: Sequence[str] | None = None,
    tags: frozenset[str] | None = None,
    tree: ast.Module | None = None,
) -> list[Finding]:
    """File-level rule findings with no suppression applied.

    ``tree`` lets the caller share one parse across every pass over the
    same file (the ``analyze_paths`` driver parses each file exactly
    once).
    """
    if tags is None:
        tags = scope_tags(path, source)
    if tree is None:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Finding(
                    rule="SZL000",
                    path=str(path),
                    line=exc.lineno or 0,
                    message=f"file does not parse: {exc.msg}",
                    hint="fix the syntax error; unparseable files cannot be "
                    "checked against any invariant",
                )
            ]
    ctx = RuleContext(path=path, source=source, tree=tree, tags=tags)
    findings: list[Finding] = []
    for rule in _selected(all_rules(), select):
        if rule.checker is None:
            continue
        if not (rule.tags & tags):
            continue
        findings.extend(rule.checker(ctx))
    return findings


def lint_source(
    source: str,
    path: Path | str = "<memory>",
    select: Sequence[str] | None = None,
    tags: frozenset[str] | None = None,
) -> list[Finding]:
    """Lint one module's source text with the file-level rules."""
    path = Path(path)
    raw = _lint_file_raw(source, path, select=select, tags=tags)
    return _apply_suppressions(raw, _suppressions(source))


def discover_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into the sorted set of ``.py`` targets."""
    out: set[Path] = set()
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.update(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            out.add(path)
    return sorted(out)


def lint_paths(
    paths: Sequence[Path | str] | None = None,
    select: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint files/directories; defaults to the whole ``repro`` package.

    Runs all file rules plus the project rules (SZL004 needs to see the
    op modules and ``dispatch.py`` together).
    """
    targets = discover_files(
        [Path(p) for p in paths] if paths else [default_target()]
    )
    findings: list[Finding] = []
    sources: dict[Path, str] = {}
    for path in targets:
        try:
            source = path.read_text()
        except OSError as exc:
            findings.append(
                Finding(
                    rule="SZL000",
                    path=str(path),
                    line=0,
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        sources[path] = source
        findings.extend(lint_source(source, path, select=select))
    project_ctx = ProjectContext(paths=targets, sources=sources)
    for rule in _selected(all_rules(), select):
        if rule.project_checker is not None:
            project_findings = rule.project_checker(project_ctx)
            # Project findings honour the suppression comments of the file
            # they anchor to (line-granular, same as file rules).
            by_path: dict[str, list[Finding]] = {}
            for f in project_findings:
                by_path.setdefault(f.path, []).append(f)
            for fpath, fs in by_path.items():
                src = sources.get(Path(fpath))
                findings.extend(
                    _apply_suppressions(fs, _suppressions(src)) if src else fs
                )
    return sort_findings(findings)


#: Syntactic rules superseded by their path-sensitive dataflow upgrades.
#: In a ``--dataflow`` run they are still *computed* — so their
#: suppression comments count as used (plain runs need them) — but
#: dropped from the report in favour of SZL101/SZL102 proofs.
_SHADOWED_IN_DATAFLOW = frozenset({"SZL001", "SZL002"})


def analyze_paths(
    paths: Sequence[Path | str] | None = None,
    select: Sequence[str] | None = None,
    *,
    dataflow: bool = False,
    run_lockcheck: bool = True,
    changed: Sequence[Path | str] | None = None,
) -> list[Finding]:
    """Run every analysis pass through one suppression-aware driver.

    Unlike :func:`lint_paths` (kept stable as the plain ``lint`` entry
    point), this routes the lexical lock checker (LCK001) and — with
    ``dataflow=True`` — the abstract-interpretation passes (SZL101/102,
    SZL103, LCK002, SHM001/002, ASY, TNT, NPA) through the same per-line
    suppression machinery, tracks which suppression comments actually
    fired, and on a full run reports stale ones as ``SZL099``.

    ``changed`` enables incremental mode (``lint --changed``): every
    target is still read and parsed — the cross-file passes (project
    rules, LCK002 lock ordering) need the whole picture — but the
    expensive per-file passes run only on the listed files, and the
    report (including SZL099 stale-suppression accounting) is restricted
    to them.  Per-file dataflow passes are module-local, so the result
    equals a full run's findings filtered to the changed files.
    """
    targets = discover_files(
        [Path(p) for p in paths] if paths else [default_target()]
    )
    wanted = None if select is None else {s.strip() for s in select}
    changed_set = (
        None
        if changed is None
        else {str(Path(p).resolve()) for p in changed}
    )

    report: list[Finding] = []
    sources: dict[Path, str] = {}
    raw_by_path: dict[str, list[Finding]] = {}
    shadow_by_path: dict[str, list[Finding]] = {}

    if dataflow:
        # Local import: plain lint must not pay for the abstract
        # interpreter (or fail if it ever grows optional deps).
        from repro.analysis.dataflow import (
            asyncsafety_findings,
            check_error_propagation,
            lockorder_findings,
            npa_findings,
            range_findings,
            shm_findings,
            taint_findings,
        )
        from repro.analysis.dataflow.engine import ModuleContext

    def _want(f: Finding) -> bool:
        return wanted is None or f.rule in wanted

    trees: dict[str, ast.Module] = {}
    for path in targets:
        try:
            source = path.read_text()
        except OSError as exc:
            report.append(
                Finding(
                    rule="SZL000",
                    path=str(path),
                    line=0,
                    message=f"unreadable file: {exc}",
                )
            )
            continue
        sources[path] = source
        # One parse per file, shared by the syntactic rules and every
        # dataflow pass (each pass used to re-parse and re-index the
        # module on its own — pure duplicated work).
        tags = scope_tags(path, source)
        tree: ast.Module | None
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            tree = None
        if changed_set is not None and str(path.resolve()) not in changed_set:
            # unchanged file: contribute its source/tree to the cross-file
            # passes but skip the per-file work entirely
            if dataflow and tree is not None:
                trees[str(path)] = tree
            raw_by_path[str(path)] = []
            continue
        raw = _lint_file_raw(source, path, select=select, tags=tags, tree=tree)
        if dataflow:
            shadow_by_path[str(path)] = [
                f for f in raw if f.rule in _SHADOWED_IN_DATAFLOW
            ]
            raw = [f for f in raw if f.rule not in _SHADOWED_IN_DATAFLOW]
            if tree is not None:
                trees[str(path)] = tree
                ctx = ModuleContext.build(str(path), tree)
                raw.extend(
                    f
                    for f in (
                        range_findings(str(path), source, tree=tree, ctx=ctx)
                        + check_error_propagation(str(path), source, tree=tree)
                        + shm_findings(str(path), source, tree=tree, ctx=ctx)
                        + asyncsafety_findings(
                            str(path), source, tree=tree, ctx=ctx
                        )
                        + taint_findings(
                            str(path),
                            source,
                            tree=tree,
                            ctx=ctx,
                            wire="wire" in tags,
                        )
                        + (
                            # array semantics only pay off where arrays
                            # live: kernel/runtime files that import numpy
                            npa_findings(str(path), source, tree=tree, ctx=ctx)
                            if (tags & {"codec", "runtime", "ops"})
                            and "numpy" in source
                            else []
                        )
                    )
                    if _want(f)
                )
        if run_lockcheck and (wanted is None or "LCK001" in wanted):
            from repro.analysis.lockcheck import lockcheck_source

            raw.extend(lockcheck_source(source, path))
        raw_by_path[str(path)] = raw

    project_ctx = ProjectContext(paths=targets, sources=sources)
    for rule in _selected(all_rules(), select):
        if rule.project_checker is not None:
            for f in rule.project_checker(project_ctx):
                raw_by_path.setdefault(f.path, []).append(f)
    if dataflow:
        for f in lockorder_findings(
            {str(p): s for p, s in sources.items()}, trees=trees
        ):
            if _want(f):
                raw_by_path.setdefault(f.path, []).append(f)

    # The stale-suppression check only makes sense when the full rule set
    # ran: on a partial run an idle comment may serve a rule not selected.
    active: set[str] = {r.rule_id for r in all_rules()}
    if run_lockcheck:
        active.add("LCK001")
    if dataflow:
        from repro.analysis.dataflow import DATAFLOW_RULES

        active |= DATAFLOW_RULES
    emit_stale = wanted is None

    for path, source in sources.items():
        if changed_set is not None and str(path.resolve()) not in changed_set:
            # per-file passes did not run here: suppression accounting
            # would report every comment as stale
            continue
        sup = _suppressions(source)
        used: set[tuple[int, str]] = set()
        kept = _apply_suppressions(raw_by_path.get(str(path), []), sup, used)
        _apply_suppressions(shadow_by_path.get(str(path), []), sup, used)
        report.extend(kept)
        if not emit_stale:
            continue
        for lineno, ruleset in sorted(sup.items()):
            if ruleset is None:
                # A blanket comment can only be proven idle when every
                # pass that could hit its line actually ran.
                stale = (
                    dataflow
                    and run_lockcheck
                    and not any(line == lineno for line, _ in used)
                )
                listed = "a blanket `# szops: ignore`"
            else:
                stale = ruleset <= active and not any(
                    (lineno, r) in used for r in ruleset
                )
                listed = f"`# szops: ignore[{', '.join(sorted(ruleset))}]`"
            if stale:
                report.append(
                    Finding(
                        rule="SZL099",
                        path=str(path),
                        line=lineno,
                        message=f"{listed} comment suppresses nothing",
                        hint="remove the stale suppression — the invariant "
                        "is now proven, or the code it excused has changed",
                        severity=Severity.ERROR,
                    )
                )

    for fpath, fs in raw_by_path.items():
        if Path(fpath) not in sources:  # anchor file was never read
            report.extend(fs)
    if changed_set is not None:
        report = [f for f in report if str(Path(f.path).resolve()) in changed_set]
    return sort_findings(report)
