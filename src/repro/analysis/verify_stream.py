"""``verify-stream``: static container verification without decompression.

Walks the byte layout of a serialized stream — header, section sizes,
per-block width plane — and cross-checks every *declared* quantity against
what the layout *implies*, without running BF decode or inverse Lorenzo.
This is the cheap first line of defence against truncated transfers,
foreign files, and bit-flipped headers: a corrupt stream is rejected in
microseconds instead of decoding to plausible garbage.

Verifiers exist for the two formats this repo owns end to end:

* ``szops`` — the SZOps container of :mod:`repro.core.format`;
* ``szp``  — the SZp baseline payload of :mod:`repro.baselines.szp`
  (all ablation flag combinations).  SZp payloads do not record the
  element count, so the caller must supply ``n_elements``.

Rule ids
--------
========  ==================================================================
VS001     truncated stream (a section needs more bytes than remain)
VS002     bad magic
VS003     unsupported format version
VS004     invalid header field (dtype, shape, eps, block size, flags)
VS005     per-block bit width out of range for the declared dtype
VS006     declared section size disagrees with what the width plane implies
VS007     non-monotonic section offsets (a declared u64 size is negative
          when read as signed int64, so the derived offset table decreases)
VS008     trailing bytes after the container payload
========  ==================================================================

Width policy (VS005): quantized deltas of an ``n``-byte float never need
more than ``8 n`` magnitude bits under a positive error bound, so widths
are capped at 32 for float32 sources and 64 for float64.  SZp streams are
always 32-bit capped (cuSZp is a float32 codec with int32 outliers).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.analysis.findings import Finding, Severity
from repro.core.blocks import BlockLayout
from repro.core.errors import FormatError

__all__ = [
    "STREAM_VERIFIERS",
    "verify_szops_bytes",
    "verify_szp_payload",
    "verify_file",
    "assert_stream_ok",
]

_SZOPS_MAGIC = b"SZOPS"

#: Slack allowed between a declared section size and the minimum the width
#: plane implies, before the extra bytes are flagged (writers may pad).
_SECTION_SLACK = 8


class _Truncated(Exception):
    def __init__(self, needed: int, offset: int, what: str) -> None:
        super().__init__(what)
        self.needed = needed
        self.offset = offset
        self.what = what


class _Cursor:
    """Sequential byte reader that raises :class:`_Truncated` (not parse)."""

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def remaining(self) -> int:
        return len(self.buf) - self.pos

    def take(self, n: int, what: str) -> bytes:
        if n < 0 or self.pos + n > len(self.buf):
            raise _Truncated(n, self.pos, what)
        out = self.buf[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self, what: str) -> int:
        return self.take(1, what)[0]

    def u32(self, what: str) -> int:
        return struct.unpack("<I", self.take(4, what))[0]

    def u64(self, what: str) -> int:
        return struct.unpack("<Q", self.take(8, what))[0]

    def f64(self, what: str) -> float:
        return struct.unpack("<d", self.take(8, what))[0]

    def string(self, what: str) -> str:
        n = self.u32(f"{what} length")
        raw = self.take(n, what)
        return raw.decode("utf-8", errors="replace")


def _finding(
    rule: str,
    path: str,
    offset: int,
    message: str,
    hint: str = "",
    severity: Severity = Severity.ERROR,
) -> Finding:
    return Finding(
        rule=rule,
        path=path,
        line=0,
        message=message,
        hint=hint,
        severity=severity,
        offset=offset,
    )


def _truncation_finding(exc: _Truncated, path: str) -> Finding:
    return _finding(
        "VS001",
        path,
        exc.offset,
        f"truncated stream: {exc.what} needs {exc.needed} more byte(s) at "
        f"offset {exc.offset}",
        hint="the file was cut short in transfer or the header lies about "
        "a section size; re-fetch the stream",
    )


def _declared_size(
    c: _Cursor, path: str, what: str, findings: list[Finding]
) -> int | None:
    """Read a declared u64 section size, flagging signed-negative values.

    A corrupted size with the top bit set reads as an offset that *moves
    backwards* once interpreted as signed int64 — the classic
    non-monotonic-offset corruption (VS007).  Returns ``None`` when the
    size is unusable.
    """
    at = c.pos
    raw = c.u64(f"{what} size")
    if raw >= 1 << 63:
        findings.append(
            _finding(
                "VS007",
                path,
                at,
                f"declared {what} size {raw:#x} is negative as signed int64; "
                "the derived section offset table is non-monotonic",
                hint="a corrupted or hostile size field; reject the stream",
            )
        )
        return None
    return raw


def _width_cap(itemsize: int) -> int:
    return 32 if itemsize <= 4 else 64


def _check_width_plane(
    widths: np.ndarray, cap: int, plane_offset: int, path: str
) -> list[Finding]:
    findings: list[Finding] = []
    bad = np.flatnonzero(widths > cap)
    for idx in bad[:8]:  # cap the noise; one bad byte often smears many
        findings.append(
            _finding(
                "VS005",
                path,
                plane_offset + int(idx),
                f"block {int(idx)} declares bit width {int(widths[idx])}, "
                f"above the {cap}-bit cap for this dtype",
                hint="a corrupted width byte; every downstream section "
                "boundary derived from it would be wrong",
            )
        )
    if bad.size > 8:
        findings.append(
            _finding(
                "VS005",
                path,
                plane_offset,
                f"{int(bad.size)} blocks total exceed the {cap}-bit width cap "
                "(first 8 reported individually)",
            )
        )
    return findings


def _check_section(
    name: str,
    declared: int,
    implied_min: int,
    offset: int,
    path: str,
    findings: list[Finding],
) -> None:
    """Compare a declared section size to the width-plane-implied minimum."""
    if declared < implied_min:
        findings.append(
            _finding(
                "VS006",
                path,
                offset,
                f"{name} section declares {declared} byte(s) but the width "
                f"plane implies at least {implied_min}",
                hint="the block count / width plane and the section size "
                "disagree; one of them is corrupt",
            )
        )
    elif declared > implied_min + _SECTION_SLACK:
        findings.append(
            _finding(
                "VS006",
                path,
                offset,
                f"{name} section declares {declared} byte(s), "
                f"{declared - implied_min} more than the width plane implies",
                hint="unexpected padding; tolerated but suspicious",
                severity=Severity.WARNING,
            )
        )


def verify_szops_bytes(data: bytes, path: str = "<bytes>") -> list[Finding]:
    """Statically verify a serialized SZOps stream without decompressing."""
    findings: list[Finding] = []
    c = _Cursor(data)
    try:
        magic = c.take(len(_SZOPS_MAGIC), "magic")
        if magic != _SZOPS_MAGIC:
            findings.append(
                _finding(
                    "VS002",
                    path,
                    0,
                    f"bad magic {magic!r}; not an SZOps stream",
                    hint=f"expected {_SZOPS_MAGIC!r}",
                )
            )
            return findings
        at = c.pos
        version = c.u8("version")
        if version != 1:
            findings.append(
                _finding(
                    "VS003",
                    path,
                    at,
                    f"unsupported SZOps stream version {version}",
                    hint="only version 1 exists; a corrupt byte or a stream "
                    "from a future writer",
                )
            )
            return findings
        at = c.pos
        dtype_str = c.string("dtype field")
        try:
            dtype = np.dtype(dtype_str)
        except TypeError:
            findings.append(
                _finding("VS004", path, at, f"undecodable dtype field {dtype_str!r}")
            )
            return findings
        if dtype.kind != "f" or dtype.itemsize not in (4, 8):
            findings.append(
                _finding(
                    "VS004",
                    path,
                    at,
                    f"dtype {dtype.str!r} is not a 4- or 8-byte float",
                    hint="SZOps streams carry float32/float64 data only",
                )
            )
            return findings
        ndim = c.u8("ndim")
        shape = tuple(c.u64(f"dim {i}") for i in range(ndim))
        n_elements = 1
        for dim in shape:
            n_elements *= dim
        if n_elements <= 0 or n_elements > 2**62:
            findings.append(
                _finding(
                    "VS004", path, at, f"implausible shape in header: {shape}"
                )
            )
            return findings
        at = c.pos
        eps = c.f64("eps")
        if not (eps > 0 and np.isfinite(eps)):
            findings.append(
                _finding("VS004", path, at, f"invalid error bound {eps} in header")
            )
            return findings
        at = c.pos
        block_size = c.u32("block size")
        if block_size <= 0:
            findings.append(
                _finding("VS004", path, at, f"invalid block size {block_size}")
            )
            return findings

        layout = BlockLayout(n_elements, block_size)
        lens = layout.lengths().astype(object)  # python ints: no overflow
        plane_offset = c.pos
        widths = np.frombuffer(
            c.take(layout.n_blocks, "width plane"), dtype=np.uint8
        )
        findings.extend(
            _check_width_plane(widths, _width_cap(dtype.itemsize), plane_offset, path)
        )

        # Outlier plane: dtype + declared count + data (write_array framing).
        at = c.pos
        out_dtype_str = c.string("outlier dtype")
        try:
            out_dtype = np.dtype(out_dtype_str)
        except TypeError:
            findings.append(
                _finding(
                    "VS004", path, at, f"undecodable outlier dtype {out_dtype_str!r}"
                )
            )
            return findings
        if out_dtype.kind != "i":
            findings.append(
                _finding(
                    "VS004",
                    path,
                    at,
                    f"outlier plane dtype {out_dtype.str!r} is not signed integer",
                )
            )
            return findings
        at = c.pos
        out_count = _declared_size(c, path, "outlier plane", findings)
        if out_count is None:
            return findings
        if out_count != layout.n_blocks:
            findings.append(
                _finding(
                    "VS006",
                    path,
                    at,
                    f"outlier plane declares {out_count} entries but the "
                    f"header implies {layout.n_blocks} blocks "
                    f"({n_elements} elements / block size {block_size})",
                    hint="declared block count and payload geometry disagree",
                )
            )
            return findings
        c.take(out_count * out_dtype.itemsize, "outlier plane data")

        # Sign section: one bit per element of each non-constant block.
        stored = widths > 0
        sign_bits = int(sum(int(l) for l in lens[stored]))
        at = c.pos
        n_sign = _declared_size(c, path, "sign", findings)
        if n_sign is None:
            return findings
        _check_section("sign", n_sign, (sign_bits + 7) // 8, at, path, findings)
        c.take(n_sign, "sign section")

        # Payload section: per-block bit offsets must grow monotonically to
        # the declared size.  Widths already validated above; compute in
        # python ints so a hostile width plane cannot overflow the check.
        payload_bits = 0
        for w, l in zip(widths[stored].tolist(), lens[stored]):
            step = int(w) * int(l)
            next_offset = payload_bits + step
            if next_offset < payload_bits:  # pragma: no cover - int64 only
                findings.append(
                    _finding(
                        "VS007",
                        path,
                        c.pos,
                        "per-block payload offsets overflow and decrease",
                    )
                )
                return findings
            payload_bits = next_offset
        at = c.pos
        n_payload = _declared_size(c, path, "payload", findings)
        if n_payload is None:
            return findings
        _check_section(
            "payload", n_payload, (payload_bits + 7) // 8, at, path, findings
        )
        c.take(n_payload, "payload section")
    except _Truncated as exc:
        findings.append(_truncation_finding(exc, path))
        return findings

    if c.remaining():
        findings.append(
            _finding(
                "VS008",
                path,
                c.pos,
                f"{c.remaining()} trailing byte(s) after the container payload",
                hint="either the stream was concatenated with something else "
                "or a section size field was corrupted downwards",
            )
        )
    return findings


def verify_szp_payload(
    payload: bytes, n_elements: int, path: str = "<bytes>"
) -> list[Finding]:
    """Statically verify an SZp baseline payload (any ablation flags).

    SZp payloads carry no element count; ``n_elements`` comes from the
    blob metadata (:class:`repro.baselines.base.GenericCompressed`).
    """
    findings: list[Finding] = []
    c = _Cursor(payload)
    try:
        at = c.pos
        block_size = c.u32("block size")
        if block_size <= 0 or block_size % 8:
            findings.append(
                _finding(
                    "VS004",
                    path,
                    at,
                    f"invalid SZp block size {block_size} (must be a positive "
                    "multiple of 8)",
                )
            )
            return findings
        at = c.pos
        flags = c.u8("flags")
        if flags & ~0b111:
            findings.append(
                _finding(
                    "VS004",
                    path,
                    at,
                    f"unknown SZp flag bits set: {flags:#04x}",
                    hint="only bits 0-2 (lengths, full signs, word align) exist",
                )
            )
            return findings
        store_lengths = bool(flags & 1)
        full_signs = bool(flags & 2)
        word_align = bool(flags & 4)
        at = c.pos
        eps = c.f64("eps")
        if not (eps > 0 and np.isfinite(eps)):
            findings.append(
                _finding("VS004", path, at, f"invalid error bound {eps} in header")
            )
            return findings

        layout = BlockLayout(n_elements, block_size)
        lens = layout.lengths().astype(object)
        plane_offset = c.pos
        widths = np.frombuffer(
            c.take(layout.n_blocks, "width plane"), dtype=np.uint8
        )
        findings.extend(_check_width_plane(widths, 32, plane_offset, path))
        if any(f.rule == "VS005" for f in findings):
            return findings

        block_bits = [int(w) * int(l) for w, l in zip(widths.tolist(), lens)]
        if word_align:
            block_bits = [-(-b // 32) * 32 for b in block_bits]
        if store_lengths:
            at = c.pos
            byte_lens = np.frombuffer(
                c.take(layout.n_blocks * 2, "length plane"), dtype="<u2"
            )
            implied = [-(-b // 8) for b in block_bits]
            mismatch = [
                i for i, (a, b) in enumerate(zip(byte_lens.tolist(), implied)) if a != b
            ]
            for i in mismatch[:8]:
                findings.append(
                    _finding(
                        "VS006",
                        path,
                        at + 2 * i,
                        f"length plane says block {i} spans "
                        f"{int(byte_lens[i])} byte(s) but its width implies "
                        f"{implied[i]}",
                        hint="the redundant length plane disagrees with the "
                        "width plane; the stream is internally inconsistent",
                    )
                )
            if mismatch:
                return findings
        c.take(layout.n_blocks * 4, "outlier plane")

        if full_signs:
            sign_bits = n_elements
        else:
            sign_bits = int(sum(int(l) for l in lens[widths > 0]))
        at = c.pos
        n_sign = _declared_size(c, path, "sign", findings)
        if n_sign is None:
            return findings
        _check_section("sign", n_sign, (sign_bits + 7) // 8, at, path, findings)
        c.take(n_sign, "sign section")

        if full_signs:
            payload_bits = sum(block_bits)
        else:
            payload_bits = sum(
                b for b, w in zip(block_bits, widths.tolist()) if w > 0
            )
        at = c.pos
        n_payload = _declared_size(c, path, "payload", findings)
        if n_payload is None:
            return findings
        _check_section(
            "payload", n_payload, (payload_bits + 7) // 8, at, path, findings
        )
        c.take(n_payload, "payload section")
    except _Truncated as exc:
        findings.append(_truncation_finding(exc, path))
        return findings

    if c.remaining():
        findings.append(
            _finding(
                "VS008",
                path,
                c.pos,
                f"{c.remaining()} trailing byte(s) after the container payload",
            )
        )
    return findings


#: Registry of stream verifiers, keyed by format name (CLI ``--format``).
STREAM_VERIFIERS: dict[str, Callable[..., list[Finding]]] = {
    "szops": verify_szops_bytes,
    "szp": verify_szp_payload,
}


def verify_file(
    path: Path | str,
    fmt: str | None = None,
    n_elements: int | None = None,
) -> list[Finding]:
    """Verify a stream file; sniffs the format from the magic by default."""
    path = Path(path)
    data = path.read_bytes()
    if fmt is None:
        fmt = "szops" if data[: len(_SZOPS_MAGIC)] == _SZOPS_MAGIC else "szp"
    if fmt not in STREAM_VERIFIERS:
        raise ValueError(
            f"unknown stream format {fmt!r}; known: {sorted(STREAM_VERIFIERS)}"
        )
    if fmt == "szp":
        if n_elements is None:
            raise ValueError(
                "SZp payloads do not record the element count; pass n_elements"
            )
        return verify_szp_payload(data, n_elements, path=str(path))
    return verify_szops_bytes(data, path=str(path))


def assert_stream_ok(
    data: bytes, fmt: str = "szops", n_elements: int | None = None
) -> None:
    """Library assertion: raise :class:`FormatError` on any error finding.

    Cheap enough to run before handing untrusted bytes to
    ``SZOpsCompressed.from_bytes`` or a baseline's ``decompress``.
    """
    if fmt == "szp":
        if n_elements is None:
            raise ValueError("n_elements is required for SZp payloads")
        findings = verify_szp_payload(data, n_elements)
    elif fmt == "szops":
        findings = verify_szops_bytes(data)
    else:
        raise ValueError(f"unknown stream format {fmt!r}")
    errors = [f for f in findings if f.severity is Severity.ERROR]
    if errors:
        raise FormatError(
            "stream failed static verification: "
            + "; ".join(f"{f.rule} {f.message}" for f in errors[:4])
        )
