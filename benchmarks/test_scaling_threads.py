"""Supplementary experiment: thread scaling of the blockwise executor.

The paper's CPU SZp runs on all 12 logical CPUs of its testbed; this
benchmark checks that our chunked thread-pool substrate behaves sanely —
multi-threaded compression must (a) produce bit-identical streams and
(b) not be slower than single-threaded by more than scheduling noise on
multi-core machines (NumPy releases the GIL inside the packing kernels).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import SZOps
from repro.datasets import generate_fields


@pytest.fixture(scope="module")
def big_field(bench_cfg):
    return generate_fields("Miranda", scale=bench_cfg.scale, fields=["density"])["density"]


@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_compress_thread_scaling(benchmark, big_field, bench_cfg, n_threads):
    codec = SZOps(n_threads=n_threads)
    benchmark.extra_info["n_threads"] = n_threads
    benchmark.extra_info["cpus"] = os.cpu_count()
    c = benchmark(codec.compress, big_field, bench_cfg.eps)
    codec.close()
    # identical output regardless of thread count
    reference = SZOps().compress(big_field, bench_cfg.eps)
    assert c.to_bytes() == reference.to_bytes()


@pytest.mark.parametrize("n_threads", [1, 4])
def test_decompress_thread_scaling(benchmark, big_field, bench_cfg, n_threads):
    blob = SZOps().compress(big_field, bench_cfg.eps)
    codec = SZOps(n_threads=n_threads)
    benchmark.extra_info["n_threads"] = n_threads
    out = benchmark(codec.decompress, blob)
    codec.close()
    assert np.array_equal(out, SZOps().decompress(blob))
