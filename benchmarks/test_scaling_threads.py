"""Supplementary experiment: worker scaling of the execution backends.

The paper's CPU SZp runs on all 12 logical CPUs of its testbed; this
module checks that our chunked substrates behave sanely — parallel
compression must (a) produce bit-identical streams on every backend and
(b) scale with physical cores where cores exist (thread kernels release
the GIL inside NumPy packing; the process backend sidesteps the GIL
entirely via shared-memory chunk transport).

``test_parallel_backends_report`` regenerates the full backend × workers
sweep (compress with the QZ/LZ/BF stage split, decompress, backend-routed
mean/variance) and persists it as ``BENCH_parallel.json``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro import SZOps
from repro.datasets import generate_fields
from repro.parallel.backends import available_backends



@pytest.fixture(scope="module")
def big_field(bench_cfg):
    return generate_fields("Miranda", scale=bench_cfg.scale, fields=["density"])["density"]


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_compress_backend_scaling(benchmark, big_field, bench_cfg, backend, n_workers):
    codec = SZOps(n_threads=n_workers, backend=backend)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["n_workers"] = n_workers
    benchmark.extra_info["cpus"] = os.cpu_count()
    c = benchmark(codec.compress, big_field, bench_cfg.eps)
    codec.close()
    # identical output regardless of backend and worker count
    reference = SZOps(backend="serial").compress(big_field, bench_cfg.eps)
    assert c.to_bytes() == reference.to_bytes()


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("n_workers", [1, 4])
def test_decompress_backend_scaling(benchmark, big_field, bench_cfg, backend, n_workers):
    blob = SZOps(backend="serial").compress(big_field, bench_cfg.eps)
    codec = SZOps(n_threads=n_workers, backend=backend)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["n_workers"] = n_workers
    out = benchmark(codec.decompress, blob)
    codec.close()
    assert np.array_equal(out, SZOps(backend="serial").decompress(blob))


def test_parallel_backends_report(bench_cfg, experiment_runs_root):
    from repro.harness import load_bench_json, save_bench_json
    from repro.harness.experiments import (
        bench_parallel_payload,
        get_table,
        render_report_markdown,
        run_experiment,
    )

    table = get_table("parallel-backends", workers=(1, 2, 4, 8))
    result = run_experiment(
        table,
        bench_cfg,
        experiment_runs_root,
        index_path=experiment_runs_root / "experiments.db",
    )
    print(render_report_markdown(result.report))
    bench = bench_parallel_payload(result.manifest, result.cells)
    out = save_bench_json(
        bench, Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    )
    # Round-trip through the tolerant loader: the snapshot must come back
    # stamped with the current schema version and a concrete git SHA.
    reloaded = load_bench_json(out)
    assert reloaded["schema_version"] >= 2
    assert reloaded["git_sha"]

    assert bench["all_identical"], "backends diverged — bit-identity broken"
    cells = {(c["backend"], c["workers"]): c for c in bench["cells"]}
    # Stage split must account for (most of) the compress wall time.
    for cell in cells.values():
        stages = sum(cell["compress_stage_seconds"].values())
        assert stages <= cell["compress_seconds"] * 1.05
    # The ≥1.5x processes-vs-serial compression target only holds where
    # physical cores exist; single-core hosts measure pure overhead, and
    # the JSON records "cpus" so readers can judge the numbers.
    if (os.cpu_count() or 1) >= 4:
        speedup = (
            cells[("serial", 4)]["compress_seconds"]
            / cells[("processes", 4)]["compress_seconds"]
        )
        assert speedup >= 1.5, f"processes@4 only {speedup:.2f}x over serial"
