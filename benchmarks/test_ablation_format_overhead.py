"""Experiment E7 — ablation backing Section VI-B3's ratio explanation.

The paper attributes SZOps's ratio advantage over SZp to dropping the
per-block compressed-byte-length limits and reorganizing outliers.  This
ablation toggles each SZp stream overhead individually and shows the
stripped format converging to the SZOps container size.
"""

from __future__ import annotations

import pytest

from repro.baselines import make_codec
from repro.harness import run_ablation_format

from conftest import emit


@pytest.mark.parametrize(
    "variant,kwargs",
    [
        ("faithful", dict()),
        ("stripped", dict(store_block_lengths=False, full_sign_bitmap=False, word_align_payload=False)),
    ],
)
def test_szp_variant_compression(benchmark, variant, kwargs, hurricane_field, bench_cfg):
    codec = make_codec("SZp", **kwargs)
    blob = benchmark(codec.compress, hurricane_field, bench_cfg.eps)
    benchmark.extra_info["ratio"] = round(blob.compression_ratio, 3)


def test_ablation_format_report(benchmark, bench_cfg):
    result = benchmark.pedantic(
        run_ablation_format, args=(bench_cfg,), rounds=1, iterations=1
    )
    emit(result)
    ratios = {row[0]: row[1] for row in result.rows}
    assert ratios["all three off (SZOps-shaped)"] > ratios["SZp (faithful format)"]
    assert ratios["SZOps container"] == pytest.approx(
        ratios["all three off (SZOps-shaped)"], rel=0.06
    )
