"""Experiment E3 — Figure 6: SZOps kernel vs SZp end-to-end throughput.

The paper plots GB/s for every operation and dataset with the speedup ratio
above each SZOps bar (2x up to >206x), and Table V explains why: no
decompression for negation/add/sub, partial decompression + constant blocks
for multiplication, constant blocks + integer ops for the reductions.
"""

from __future__ import annotations

import pytest

from repro import ops
from repro.core.ops.dispatch import OPERATIONS
from repro.harness import DEFAULT_SCALAR, run_figure6

from conftest import emit


@pytest.mark.parametrize(
    "op", ["negation", "scalar_add", "scalar_multiply", "mean", "variance"]
)
def test_szops_kernel_throughput(benchmark, szops_blob, op):
    """Micro-cases: each SZOps kernel in isolation (the navy bars)."""
    scalar = DEFAULT_SCALAR if OPERATIONS[op].needs_scalar else None
    benchmark.extra_info["bytes"] = szops_blob.original_nbytes
    if scalar is None:
        benchmark(OPERATIONS[op].fn, szops_blob)
    else:
        benchmark(OPERATIONS[op].fn, szops_blob, scalar)


def test_figure6_report(bench_cfg, ops_matrix):
    """Regenerate Figure 6's data series from the indexed ops-matrix run."""
    matrix = ops_matrix
    result = run_figure6(bench_cfg, matrix)
    emit(result)

    # Table V assertions (E6): speedups group by operating space.
    by_op: dict[str, list[float]] = {}
    for m in matrix:
        by_op.setdefault(m.op_name, []).append(m.speedup)
    mean = lambda xs: sum(xs) / len(xs)
    # fully compressed space >> everything else
    assert mean(by_op["negation"]) > 10
    assert mean(by_op["scalar_add"]) > 10
    assert mean(by_op["scalar_subtract"]) > 10
    # partial-space ops beat or match the traditional workflow on average
    for op in ("scalar_multiply", "mean", "variance", "std"):
        assert mean(by_op[op]) > 0.85, (op, by_op[op])
