"""Shared fixtures for the benchmark suite.

Every experiment of the paper's evaluation section has one module here; the
drivers live in :mod:`repro.harness.runner`.  Workload sizes follow the
environment knobs documented in :mod:`repro.harness.config`
(``REPRO_BENCH_SCALE``, ``REPRO_BENCH_FIELDS``, ``REPRO_BENCH_REPEATS``).

Each module contains pytest-benchmark micro-cases for its headline kernels
plus one ``test_*_report`` case that regenerates the full table/figure,
prints it, and writes ``results/<exp>.md``.
"""

from __future__ import annotations

import pytest

from repro import SZOps
from repro.baselines import make_codec
from repro.datasets import generate_fields
from repro.harness import config_from_env


@pytest.fixture(scope="session")
def bench_cfg():
    return config_from_env(max_fields=3)


@pytest.fixture(scope="session")
def hurricane_field(bench_cfg):
    """One representative Hurricane field at the benchmark scale."""
    return generate_fields("Hurricane", scale=bench_cfg.scale, fields=["U"])["U"]


@pytest.fixture(scope="session")
def szops_codec():
    return SZOps()


@pytest.fixture(scope="session")
def szops_blob(szops_codec, hurricane_field, bench_cfg):
    return szops_codec.compress(hurricane_field, bench_cfg.eps)


@pytest.fixture(scope="session")
def szp_codec():
    return make_codec("SZp")


@pytest.fixture(scope="session")
def szp_blob(szp_codec, hurricane_field, bench_cfg):
    return szp_codec.compress(hurricane_field, bench_cfg.eps)


def emit(result, capsys=None):
    """Persist an ExperimentResult and echo it to stdout."""
    from repro.harness import render_result, save_result

    path = save_result(result)
    text = render_result(result)
    print(f"\n[saved {path}]\n{text}")
    return text
