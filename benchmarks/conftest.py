"""Shared fixtures for the benchmark suite.

Every experiment of the paper's evaluation section has one module here; the
drivers live in :mod:`repro.harness.runner`.  Workload sizes follow the
environment knobs documented in :mod:`repro.harness.config`
(``REPRO_BENCH_SCALE``, ``REPRO_BENCH_FIELDS``, ``REPRO_BENCH_REPEATS``).

Each module contains pytest-benchmark micro-cases for its headline kernels
plus one ``test_*_report`` case that regenerates the full table/figure,
prints it, and writes ``results/<exp>.md``.
"""

from __future__ import annotations

import pytest

from repro import SZOps
from repro.baselines import make_codec
from repro.datasets import generate_fields
from repro.harness import config_from_env


@pytest.fixture(scope="session")
def bench_cfg():
    return config_from_env(max_fields=3)


@pytest.fixture(scope="session")
def hurricane_field(bench_cfg):
    """One representative Hurricane field at the benchmark scale."""
    return generate_fields("Hurricane", scale=bench_cfg.scale, fields=["U"])["U"]


@pytest.fixture(scope="session")
def szops_codec():
    return SZOps()


@pytest.fixture(scope="session")
def szops_blob(szops_codec, hurricane_field, bench_cfg):
    return szops_codec.compress(hurricane_field, bench_cfg.eps)


@pytest.fixture(scope="session")
def experiment_runs_root(tmp_path_factory):
    """Artifact root + cross-run index shared by the engine-backed reports."""
    return tmp_path_factory.mktemp("experiment-runs")


@pytest.fixture(scope="session")
def ops_matrix(bench_cfg, experiment_runs_root):
    """Figure 5/6 measurement rows, via the experiment engine and its index.

    The ops-matrix run table executes once per session; the figures then
    read their cells back out of the SQLite index — the same store
    ``repro experiment run`` feeds — rather than re-measuring per module.
    """
    from repro.harness.experiments import (
        get_cells,
        get_table,
        latest_run_id,
        open_index,
        ops_matrix_from_cells,
        run_experiment,
    )

    index_path = experiment_runs_root / "experiments.db"
    table = get_table("ops-matrix", datasets=tuple(bench_cfg.datasets))
    run_experiment(table, bench_cfg, experiment_runs_root, index_path=index_path)
    conn = open_index(index_path)
    try:
        cells = get_cells(conn, latest_run_id(conn, "ops-matrix"))
    finally:
        conn.close()
    return ops_matrix_from_cells(cells)


@pytest.fixture(scope="session")
def szp_codec():
    return make_codec("SZp")


@pytest.fixture(scope="session")
def szp_blob(szp_codec, hurricane_field, bench_cfg):
    return szp_codec.compress(hurricane_field, bench_cfg.eps)


def emit(result, capsys=None):
    """Persist an ExperimentResult and echo it to stdout."""
    from repro.harness import render_result, save_result

    path = save_result(result)
    text = render_result(result)
    print(f"\n[saved {path}]\n{text}")
    return text
