"""Experiment E8 — ablation backing Section VI-B2's reduction-speed claim.

The paper states reduction throughput depends on the constant-block
fraction (Table V / Table VI): constant blocks are excluded from payload
decoding.  This ablation sweeps the plateau fraction of a synthetic field
and measures the mean-reduction kernel.
"""

from __future__ import annotations

import pytest

from repro import SZOps, ops
from repro.datasets.synthetic import FieldSpec, synthesize_field
from repro.harness import run_ablation_constant_blocks

from conftest import emit


@pytest.mark.parametrize("plateau", [0.0, 0.8])
def test_mean_kernel_vs_constant_fraction(benchmark, plateau, bench_cfg):
    spec = FieldSpec("sweep", beta=6.3, amplitude=0.03, plateau=plateau, noise=5e-5)
    arr = synthesize_field(spec, (64, 96, 96), seed=bench_cfg.seed)
    c = SZOps().compress(arr, bench_cfg.eps)
    benchmark.extra_info["const_frac"] = round(c.constant_fraction, 3)
    benchmark(ops.mean, c)


def test_ablation_constant_blocks_report(benchmark, bench_cfg):
    result = benchmark.pedantic(
        run_ablation_constant_blocks, args=(bench_cfg,), rounds=1, iterations=1
    )
    emit(result)
    rows = result.rows
    # constant fraction grows with the plateau sweep ...
    fractions = [r[1] for r in rows]
    assert fractions == sorted(fractions)
    # ... and the most constant-heavy case reduces much faster than the least
    assert rows[-1][2] < 0.7 * rows[0][2]
