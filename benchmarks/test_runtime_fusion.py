"""Experiment R1 — runtime fusion: fused op chain vs eager ops.

The ISSUE-1 acceptance benchmark: a fused 3-op chain
(negate → ×scalar → mean) through :mod:`repro.runtime` must run at least
2x faster than the three eager operations on the largest synthetic
dataset, with identical results.  The report case persists both
``results/runtime_fusion.md`` and the machine-readable
``BENCH_runtime.json`` at the repository root.
"""

from __future__ import annotations

from pathlib import Path

from repro import lazy, ops
from repro.harness import save_bench_json
from repro.runtime import cache_disabled, clear_cache


CHAIN = ["negation", "scalar_multiply=0.1", "mean"]


def _eager_chain(blob):
    with cache_disabled():
        return ops.apply_chain(blob, CHAIN, fused=False)


def _fused_chain(blob):
    clear_cache()
    return ops.apply_chain(blob, CHAIN, fused=True)


def test_eager_chain(benchmark, szops_blob):
    """Micro-case: three eager ops, decoded-block cache off (baseline)."""
    benchmark(_eager_chain, szops_blob)


def test_fused_chain_cold(benchmark, szops_blob):
    """Micro-case: one LazyStream chain, cache cleared every round."""
    benchmark(_fused_chain, szops_blob)


def test_fused_chain_warm(benchmark, szops_blob):
    """Micro-case: the same chain with the decoded-block cache warm."""
    lazy(szops_blob).negate().scalar_multiply(0.1).mean()  # prime
    benchmark(lambda b: lazy(b).negate().scalar_multiply(0.1).mean(), szops_blob)


def test_runtime_fusion_report(bench_cfg, experiment_runs_root):
    """Regenerate the fusion table through the engine; persist BENCH_runtime.json."""
    from repro.harness.experiments import (
        bench_runtime_payload,
        get_table,
        render_report_markdown,
        run_experiment,
    )

    table = get_table("runtime-fusion")
    result = run_experiment(
        table,
        bench_cfg,
        experiment_runs_root,
        index_path=experiment_runs_root / "experiments.db",
    )
    print(render_report_markdown(result.report))
    bench = bench_runtime_payload(result.cells)
    save_bench_json(bench, Path(__file__).resolve().parent.parent / "BENCH_runtime.json")
    # ISSUE-1 acceptance: >= 2x on the largest dataset, identical results.
    assert bench["identical_results"], "fused chain diverged from eager ops"
    assert bench["speedup_fused_vs_eager"] >= 2.0, bench
