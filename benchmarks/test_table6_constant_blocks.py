"""Experiment E4 — Table VI: constant vs total blocks per dataset.

The paper counts quantization-constant blocks at eps 1e-2 per dataset;
these blocks are what the reduction and multiplication kernels skip.
"""

from __future__ import annotations

from repro import SZOps
from repro.datasets import generate_fields
from repro.harness import run_table6

from conftest import emit


def test_constant_block_detection_kernel(benchmark, bench_cfg):
    """Micro-case: compression of the most constant-heavy field (QC)."""
    qc = generate_fields("SCALE-LETKF", scale=bench_cfg.scale, fields=["QC"])["QC"]
    codec = SZOps()
    c = benchmark(codec.compress, qc, 1e-2, "rel")
    assert c.constant_fraction > 0.2


def test_table6_report(benchmark, bench_cfg):
    """Regenerate Table VI and persist results/table6.md."""
    result = benchmark.pedantic(run_table6, args=(bench_cfg,), rounds=1, iterations=1)
    emit(result)
    pct = {row[0]: row[3] for row in result.rows}
    # Orderings we reproduce (see EXPERIMENTS.md for the SCALE deviation):
    assert pct["CESM-ATM"] == min(pct[d] for d in ("Hurricane", "CESM-ATM", "Miranda"))
    assert pct["SCALE-LETKF"] == max(pct.values())
    for row in result.rows:
        assert 0 < row[3] < 100
