"""Experiment E2 — Figure 5: time-cost breakdown, SZp stages vs SZOps total.

The paper's Figure 5 stacks SZp's decompress/operate/compress times against
the single SZOps kernel time for all seven operations on all four datasets,
annotating each SZOps bar with the percentage reduction.
"""

from __future__ import annotations

from repro import ops
from repro.harness import run_figure5
from repro.workflow import run_traditional

from conftest import emit


def test_szp_full_workflow_negation(benchmark, szp_codec, szp_blob):
    """Micro-case: the traditional stack Figure 5 plots (orange+green+red)."""
    benchmark.pedantic(
        run_traditional, args=(szp_codec, szp_blob, "negation", None), rounds=2, iterations=1
    )


def test_szops_negation_kernel(benchmark, szops_blob):
    """Micro-case: the SZOps bar (blue) for the cheapest operation."""
    benchmark(ops.negate, szops_blob)


def test_szops_mean_kernel(benchmark, szops_blob):
    """Micro-case: the slowest SZOps kernel class (reductions)."""
    benchmark(ops.mean, szops_blob)


def test_figure5_report(bench_cfg, ops_matrix):
    """Regenerate Figure 5's data series from the indexed ops-matrix run."""
    matrix = ops_matrix
    result = run_figure5(bench_cfg, matrix)
    emit(result)
    # Paper shape: the fully-compressed-space operations cut >90% of the
    # traditional time on every dataset.
    for m in matrix:
        if m.op_name in ("negation", "scalar_add", "scalar_subtract"):
            assert m.reduction_pct > 80.0, (m.dataset, m.op_name, m.reduction_pct)
    # SZOps is never slower than 1.3x the traditional path anywhere
    # (the paper notes reductions "might not always be faster").
    for m in matrix:
        assert m.szops_kernel_s <= 1.3 * m.szp_total_s, (m.dataset, m.op_name)
