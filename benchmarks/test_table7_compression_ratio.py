"""Experiment E5 — Table VII: average compression ratios per dataset/codec.

The paper's ratio table: SZOps modestly above SZp (format savings), SZ/SZ3
far above both (entropy coding), SZx/ZFP in between, with SCALE-LETKF the
most compressible dataset by a wide margin.
"""

from __future__ import annotations

import pytest

from repro import SZOps
from repro.baselines import make_codec
from repro.harness import run_table7

from conftest import emit


@pytest.mark.parametrize("codec_name", ["SZOps", "SZp", "SZ2", "SZ3", "SZx", "ZFP"])
def test_compression_kernel_per_codec(benchmark, codec_name, hurricane_field, bench_cfg):
    """Micro-cases: compression speed per codec on one Hurricane field."""
    codec = SZOps() if codec_name == "SZOps" else make_codec(codec_name)
    blob = benchmark(codec.compress, hurricane_field, bench_cfg.eps)
    benchmark.extra_info["ratio"] = round(blob.compression_ratio, 3)


def test_table7_report(benchmark, bench_cfg):
    """Regenerate Table VII and persist results/table7.md."""
    result = benchmark.pedantic(run_table7, args=(bench_cfg,), rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        ds, szops, szp, sz2, sz3, szx, zfp = row
        assert szops > szp, f"{ds}: SZOps must out-compress SZp (Section VI-B3)"
        assert max(sz2, sz3) > szops, f"{ds}: SZ-family must out-compress SZOps"
    # dataset ordering: SCALE-LETKF most compressible, as in the paper
    szops_col = {row[0]: row[1] for row in result.rows}
    assert szops_col["SCALE-LETKF"] == max(szops_col.values())
    assert szops_col["SCALE-LETKF"] > 2 * szops_col["Miranda"]
