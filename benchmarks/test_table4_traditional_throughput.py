"""Experiment E1 — Table IV: traditional-workflow throughput per codec.

The paper reports MB/s for each of the seven operations executed through
the traditional decompress-operate-recompress workflow on the Hurricane
dataset with each baseline codec, showing SZp as the fastest baseline.
"""

from __future__ import annotations

import pytest

from repro.baselines import make_codec
from repro.harness import run_table4
from repro.workflow import run_traditional

from conftest import emit


@pytest.mark.parametrize("codec_name", ["SZp", "SZ2", "SZ3", "SZx", "ZFP"])
def test_traditional_negation_per_codec(benchmark, codec_name, hurricane_field, bench_cfg):
    """Micro-case: one traditional negation per codec (Table IV column)."""
    codec = make_codec(codec_name)
    blob = codec.compress(hurricane_field, bench_cfg.eps)
    benchmark.extra_info["codec"] = codec_name
    benchmark.pedantic(
        run_traditional, args=(codec, blob, "negation", None), rounds=2, iterations=1
    )


def test_table4_report(benchmark, bench_cfg):
    """Regenerate the full Table IV and persist it to results/table4.md."""
    result = benchmark.pedantic(run_table4, args=(bench_cfg,), rounds=1, iterations=1)
    text = emit(result)
    assert "SZp" in text
    # shape check: SZp is the fastest traditional codec for scalar ops
    # (within measurement noise SZx can tie; require >= 0.7x of the max).
    for row in result.rows:
        op, szp, sz2, sz3, szx, zfp = row
        assert szp > sz2 and szp > sz3, f"SZp must beat SZ2/SZ3 on {op}"
        assert szp >= 0.6 * max(szp, szx, zfp), op
